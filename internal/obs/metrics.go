// Package obs is the daemon's production-observability layer: lock-free
// metric primitives that serve both the legacy expvar JSON snapshot and
// a zero-dependency Prometheus text exposition, a request-scoped trace
// carried through context (request ID plus span-style stage durations),
// structured leveled logging helpers over log/slog, and the single
// config layer (flags + env + file) that cmd/tcompd loads.
//
// The primitives implement expvar.Var, so a serve.Metrics built from
// them can keep rooting everything in one expvar.Map — GET /metrics
// stays byte-compatible JSON — while the same counters feed the
// Prometheus Registry without double accounting.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric. The zero value is
// ready to use. It implements expvar.Var.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// String renders the count as its decimal JSON value (expvar.Var).
func (c *Counter) String() string { return strconv.FormatInt(c.v.Load(), 10) }

// Gauge is an int64 metric that can go up and down. The zero value is
// ready to use. It implements expvar.Var.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta and returns the new value. The return is
// what makes high-water tracking race-free: the value an Add returns is
// the gauge's exact level at that instant, unlike a separate Load that
// can interleave with other writers.
func (g *Gauge) Add(delta int64) int64 { return g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// SetMax raises the gauge to v if v is greater — an atomic
// compare-and-swap max, safe against concurrent SetMax and Set calls.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if cur >= v || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// String renders the value as its decimal JSON form (expvar.Var).
func (g *Gauge) String() string { return strconv.FormatInt(g.v.Load(), 10) }

// LabelCounter is a set of counters keyed by one label value (endpoint
// path, job event, ...). Keys are created on first use and never
// removed. It implements expvar.Var, rendering as a JSON object, so it
// is a drop-in for the expvar.Map usage it replaces.
type LabelCounter struct {
	mu   sync.RWMutex
	m    map[string]*Counter
	keys []string // sorted, for deterministic output
}

// Add increments the counter under key by delta, creating it on first
// use.
func (c *LabelCounter) Add(key string, delta int64) {
	c.counter(key).Add(delta)
}

// Get returns the counter under key, or nil if the key was never added.
func (c *LabelCounter) Get(key string) *Counter {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.m[key]
}

func (c *LabelCounter) counter(key string) *Counter {
	c.mu.RLock()
	ctr := c.m[key]
	c.mu.RUnlock()
	if ctr != nil {
		return ctr
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ctr = c.m[key]; ctr != nil {
		return ctr
	}
	if c.m == nil {
		c.m = map[string]*Counter{}
	}
	ctr = &Counter{}
	c.m[key] = ctr
	i := sort.SearchStrings(c.keys, key)
	c.keys = append(c.keys, "")
	copy(c.keys[i+1:], c.keys[i:])
	c.keys[i] = key
	return ctr
}

// Do calls f for every (key, counter) pair in sorted key order.
func (c *LabelCounter) Do(f func(key string, c *Counter)) {
	c.mu.RLock()
	keys := append([]string(nil), c.keys...)
	m := make(map[string]*Counter, len(keys))
	for _, k := range keys {
		m[k] = c.m[k]
	}
	c.mu.RUnlock()
	for _, k := range keys {
		f(k, m[k])
	}
}

// String renders the set as a JSON object (expvar.Var).
func (c *LabelCounter) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	c.Do(func(key string, ctr *Counter) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%q: %d", key, ctr.Value())
	})
	b.WriteByte('}')
	return b.String()
}

// Histogram is a fixed-bucket histogram with lock-free observation:
// per-bucket atomic counters plus an atomic float64 sum (CAS on the
// bit pattern). Buckets are cumulative upper bounds in Prometheus
// style; an implicit +Inf bucket catches everything above the last
// bound. It implements expvar.Var.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// NewHistogram returns a histogram over the given strictly increasing
// upper bounds. It panics on unsorted bounds — bucket layout is a
// compile-time decision, not input data.
func NewHistogram(bounds ...float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le semantics)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Snapshot returns the bucket upper bounds and per-bucket (non-
// cumulative) counts; the final count is the +Inf bucket.
func (h *Histogram) Snapshot() (bounds []float64, counts []int64) {
	bounds = h.bounds
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}

// String renders the histogram as JSON — count, mean, and a bucket map
// labelled "<=bound" plus "+Inf" (expvar.Var).
func (h *Histogram) String() string {
	bounds, counts := h.Snapshot()
	count := h.Count()
	mean := 0.0
	if count > 0 {
		mean = h.Sum() / float64(count)
	}
	var b strings.Builder
	fmt.Fprintf(&b, `{"count":%d,"mean":%.2f,"buckets":{`, count, mean)
	for i, c := range counts {
		if i > 0 {
			b.WriteByte(',')
		}
		label := "+Inf"
		if i < len(bounds) {
			label = "<=" + formatFloat(bounds[i])
		}
		fmt.Fprintf(&b, "%q:%d", label, c)
	}
	b.WriteString("}}")
	return b.String()
}

// HistogramVec is a set of same-bucket histograms keyed by one label
// value (endpoint path, codec name, ...). It implements expvar.Var.
type HistogramVec struct {
	bounds []float64
	mu     sync.RWMutex
	m      map[string]*Histogram
	keys   []string // sorted
}

// NewHistogramVec returns a labelled histogram family sharing one
// bucket layout.
func NewHistogramVec(bounds ...float64) *HistogramVec {
	return &HistogramVec{bounds: append([]float64(nil), bounds...), m: map[string]*Histogram{}}
}

// Observe records one observation under key, creating the histogram on
// first use.
func (v *HistogramVec) Observe(key string, x float64) {
	v.histogram(key).Observe(x)
}

// Get returns the histogram under key, or nil if never observed.
func (v *HistogramVec) Get(key string) *Histogram {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.m[key]
}

func (v *HistogramVec) histogram(key string) *Histogram {
	v.mu.RLock()
	h := v.m[key]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h = v.m[key]; h != nil {
		return h
	}
	h = NewHistogram(v.bounds...)
	v.m[key] = h
	i := sort.SearchStrings(v.keys, key)
	v.keys = append(v.keys, "")
	copy(v.keys[i+1:], v.keys[i:])
	v.keys[i] = key
	return h
}

// Do calls f for every (key, histogram) pair in sorted key order.
func (v *HistogramVec) Do(f func(key string, h *Histogram)) {
	v.mu.RLock()
	keys := append([]string(nil), v.keys...)
	m := make(map[string]*Histogram, len(keys))
	for _, k := range keys {
		m[k] = v.m[k]
	}
	v.mu.RUnlock()
	for _, k := range keys {
		f(k, m[k])
	}
}

// String renders the family as a JSON object of histograms (expvar.Var).
func (v *HistogramVec) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	v.Do(func(key string, h *Histogram) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%q: %s", key, h.String())
	})
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a float the shortest way that round-trips.
func formatFloat(f float64) string {
	if math.IsInf(f, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
