package container

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// mustStream serializes a stream or panics — shared by tests and fuzz
// seed construction.
func mustStream(hdr StreamHeader, chunks []*Chunk) []byte {
	var buf bytes.Buffer
	cw, err := NewChunkWriter(&buf, hdr)
	if err != nil {
		panic(err)
	}
	for _, c := range chunks {
		if err := cw.WriteChunk(c); err != nil {
			panic(err)
		}
	}
	if err := cw.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func writeTestStream(t *testing.T, hdr StreamHeader, chunks []*Chunk) []byte {
	t.Helper()
	return mustStream(hdr, chunks)
}

func TestChunkRoundTrip(t *testing.T) {
	hdr := StreamHeader{Codec: "fdr", Width: 32, ChunkPatterns: 10}
	chunks := []*Chunk{
		{Patterns: 10, Params: []byte{1, 2, 3}, Payload: []byte{0xAB, 0xC0}, NBits: 12},
		{Patterns: 10, Params: nil, Payload: nil, NBits: 0},
		{Patterns: 3, Params: []byte{9}, Payload: []byte{0xFF}, NBits: 8},
	}
	raw := writeTestStream(t, hdr, chunks)

	cr, err := NewChunkReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if cr.Header() != hdr {
		t.Fatalf("header round-trip: got %+v want %+v", cr.Header(), hdr)
	}
	for i, want := range chunks {
		got, err := cr.Next()
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		if got.Patterns != want.Patterns || got.NBits != want.NBits ||
			!bytes.Equal(got.Params, want.Params) || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("chunk %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := cr.Next(); err != io.EOF {
		t.Fatalf("expected io.EOF, got %v", err)
	}
	if cr.TotalPatterns() != 23 {
		t.Fatalf("TotalPatterns=%d want 23", cr.TotalPatterns())
	}
	// EOF is sticky.
	if _, err := cr.Next(); err != io.EOF {
		t.Fatalf("second Next after EOF: %v", err)
	}
}

func TestChunkWriterValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewChunkWriter(&buf, StreamHeader{Codec: "BAD!", Width: 8, ChunkPatterns: 4}); err == nil {
		t.Fatal("invalid codec name accepted")
	}
	if _, err := NewChunkWriter(&buf, StreamHeader{Codec: "rl", Width: 0, ChunkPatterns: 4}); err == nil {
		t.Fatal("zero width accepted")
	}
	cw, err := NewChunkWriter(&buf, StreamHeader{Codec: "rl", Width: 8, ChunkPatterns: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.WriteChunk(&Chunk{Patterns: 5, NBits: 0}); err == nil {
		t.Fatal("oversized chunk accepted")
	}
	if err := cw.WriteChunk(&Chunk{Patterns: 0, NBits: 0}); err == nil {
		t.Fatal("empty chunk accepted")
	}
	if err := cw.WriteChunk(&Chunk{Patterns: 2, Payload: []byte{0}, NBits: 20}); err == nil {
		t.Fatal("payload/nbits mismatch accepted")
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cw.WriteChunk(&Chunk{Patterns: 1, NBits: 0}); err == nil {
		t.Fatal("write after Close accepted")
	}
}

func TestChunkReaderCorruption(t *testing.T) {
	hdr := StreamHeader{Codec: "golomb", Width: 16, ChunkPatterns: 8}
	raw := writeTestStream(t, hdr, []*Chunk{
		{Patterns: 8, Params: []byte{0, 0, 0, 4}, Payload: []byte{0x12, 0x34, 0x56}, NBits: 24},
	})

	// Flip one bit in every byte position in turn: every corruption must
	// surface as an error somewhere (header validation, CRC, trailer),
	// never as a silently different chunk.
	for i := 0; i < len(raw); i++ {
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0x04
		cr, err := NewChunkReader(bytes.NewReader(bad))
		if err != nil {
			continue
		}
		ok := true
		for ok {
			c, err := cr.Next()
			if err == io.EOF {
				t.Fatalf("corruption at byte %d went unnoticed", i)
			}
			if err != nil {
				ok = false
			} else if c == nil {
				t.Fatal("nil chunk without error")
			}
		}
	}
}

func TestChunkReaderTruncation(t *testing.T) {
	hdr := StreamHeader{Codec: "ea", Width: 16, ChunkPatterns: 4}
	raw := writeTestStream(t, hdr, []*Chunk{
		{Patterns: 4, Params: []byte{1}, Payload: []byte{0xAA}, NBits: 8},
	})
	for cut := 0; cut < len(raw); cut++ {
		cr, err := NewChunkReader(bytes.NewReader(raw[:cut]))
		if err != nil {
			continue
		}
		for {
			_, err := cr.Next()
			if err == io.EOF {
				t.Fatalf("truncation to %d bytes read as a complete stream", cut)
			}
			if err != nil {
				break
			}
		}
	}
}

func TestChunkReaderHostileFrameLength(t *testing.T) {
	hdr := StreamHeader{Codec: "rl", Width: 8, ChunkPatterns: 2}
	raw := writeTestStream(t, hdr, nil)
	// Replace the terminator with a huge frame length; the reader must
	// reject it before allocating.
	hostile := append([]byte(nil), raw[:len(raw)-12]...)
	hostile = binary.BigEndian.AppendUint32(hostile, 1<<31-1)
	cr, err := NewChunkReader(bytes.NewReader(hostile))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cr.Next(); err == nil {
		t.Fatal("hostile frame length accepted")
	}
}

func TestReadAnyRejectsV3WithHint(t *testing.T) {
	raw := writeTestStream(t, StreamHeader{Codec: "fdr", Width: 8, ChunkPatterns: 2}, nil)
	_, err := ReadAny(bytes.NewReader(raw))
	if err == nil {
		t.Fatal("ReadAny accepted a chunked container")
	}
	if !bytes.Contains([]byte(err.Error()), []byte("chunked stream")) {
		t.Fatalf("error does not point to the streaming reader: %v", err)
	}
}

// FuzzChunkedContainer feeds arbitrary bytes to the chunk reader: it
// must never panic and never allocate beyond the frame bound, and every
// stream it does accept must re-serialize to an equivalent stream.
func FuzzChunkedContainer(f *testing.F) {
	f.Add(mustStream(StreamHeader{Codec: "fdr", Width: 32, ChunkPatterns: 10},
		[]*Chunk{{Patterns: 10, Params: []byte{1}, Payload: []byte{0xAB}, NBits: 8}}))
	f.Add(mustStream(StreamHeader{Codec: "ea", Width: 4, ChunkPatterns: 1}, nil))
	f.Add([]byte("TCMP\x03"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		cr, err := NewChunkReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var chunks []*Chunk
		for {
			c, err := cr.Next()
			if err != nil {
				if err != io.EOF {
					return // rejected mid-stream: fine
				}
				break
			}
			if c.Patterns < 1 || c.Patterns > cr.Header().ChunkPatterns {
				t.Fatalf("accepted chunk with %d patterns (cap %d)", c.Patterns, cr.Header().ChunkPatterns)
			}
			chunks = append(chunks, c)
			if len(chunks) > 1<<12 {
				return
			}
		}
		// Accepted: the parsed stream must round-trip.
		var buf bytes.Buffer
		cw, err := NewChunkWriter(&buf, cr.Header())
		if err != nil {
			t.Fatalf("accepted header does not re-serialize: %v", err)
		}
		for i, c := range chunks {
			if err := cw.WriteChunk(c); err != nil {
				t.Fatalf("accepted chunk %d does not re-serialize: %v", i, err)
			}
		}
		if err := cw.Close(); err != nil {
			t.Fatal(err)
		}
		cr2, err := NewChunkReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		for i := range chunks {
			c, err := cr2.Next()
			if err != nil {
				t.Fatalf("re-read chunk %d: %v", i, err)
			}
			if c.Patterns != chunks[i].Patterns || c.NBits != chunks[i].NBits ||
				!bytes.Equal(c.Payload, chunks[i].Payload) || !bytes.Equal(c.Params, chunks[i].Params) {
				t.Fatalf("chunk %d changed across round-trip", i)
			}
		}
		if _, err := cr2.Next(); err != io.EOF {
			t.Fatalf("re-read stream does not terminate: %v", err)
		}
	})
}
