// Format v2: the universal container. Where v1 hard-codes the
// block-codec header (MV table + codeword list) and can therefore only
// carry ea/9c/9chc results, v2 stores the codec *name* plus an opaque
// per-codec parameter blob, so every registered scheme round-trips
// through the same file format.
//
// Layout (big-endian):
//
//	magic    [4]byte  "TCMP"
//	version  uint8    (2)
//	nameLen  uint8    codec-name length (1..MaxCodecName)
//	name     [nameLen]byte  lowercase codec name ([a-z0-9+_-])
//	width    uint32   circuit inputs (1..MaxWidth)
//	tCount   uint32   pattern count (0..MaxPatterns)
//	paramLen uint32   parameter-blob length (0..MaxParamBytes)
//	params   [paramLen]byte  codec-specific (see EncodeBlockParams etc.)
//	nbits    uint32   payload bit count (0..MaxPayloadBits)
//	payload  ceil(nbits/8) bytes
//
// Every reader enforces the Max* limits before trusting a header field,
// and all variable-size sections are read in bounded chunks, so a
// hostile header can never drive an allocation beyond what the stream
// actually contains.
package container

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/bitstream"
)

// Format limits, enforced symmetrically by writers and readers.
const (
	// Version2 is the universal-container format version.
	Version2 = 2
	// MaxCodecName bounds the codec-name length.
	MaxCodecName = 32
	// MaxWidth bounds the circuit-input count.
	MaxWidth = 1 << 24
	// MaxPatterns bounds the pattern count.
	MaxPatterns = 1 << 24
	// MaxParamBytes bounds the per-codec parameter blob.
	MaxParamBytes = 1 << 24
	// MaxPayloadBits bounds the encoded payload (128 MiB).
	MaxPayloadBits = 1 << 30
	// MaxTotalBits bounds the decoded size Width·Patterns. Width and
	// Patterns are individually capped, but their product is what a
	// decoder allocates: without this cap a 30-byte header declaring
	// 2^24×2^24 would drive a terabyte-scale allocation and take the
	// process down before a single payload bit is read.
	MaxTotalBits = 1 << 30
)

// Container is a parsed universal container: a codec name, the test-set
// dimensions, the codec's parameter blob, and the encoded payload. It is
// the on-disk twin of the public tcomp.Artifact.
type Container struct {
	// Version records the on-disk version the container was read from
	// (1 for legacy files, 2 otherwise). Writers always emit v2.
	Version  int
	Codec    string
	Width    int
	Patterns int
	Params   []byte
	Payload  []byte
	NBits    int
}

// Reader returns a bitstream reader over the payload.
func (c *Container) Reader() *bitstream.Reader {
	return bitstream.NewReader(c.Payload, c.NBits)
}

// TotalBits returns Width·Patterns, the uncompressed size.
func (c *Container) TotalBits() int { return c.Width * c.Patterns }

// ValidateDims checks that a (width, patterns) pair is individually in
// range and that its product — the bit count every decoder allocates for
// — stays under MaxTotalBits. The product is computed in 64-bit so a
// hostile header cannot overflow the check itself.
func ValidateDims(width, patterns int) error {
	if width < 1 || width > MaxWidth {
		return fmt.Errorf("container: width %d out of range [1,%d]", width, MaxWidth)
	}
	if patterns < 0 || patterns > MaxPatterns {
		return fmt.Errorf("container: pattern count %d out of range [0,%d]", patterns, MaxPatterns)
	}
	if total := int64(width) * int64(patterns); total > MaxTotalBits {
		return fmt.Errorf("container: decoded size %d bits (width %d × patterns %d) exceeds %d",
			total, width, patterns, MaxTotalBits)
	}
	return nil
}

func validateCodecName(name string) error {
	if len(name) == 0 || len(name) > MaxCodecName {
		return fmt.Errorf("container: codec name length %d out of range [1,%d]", len(name), MaxCodecName)
	}
	for i := 0; i < len(name); i++ {
		b := name[i]
		switch {
		case b >= 'a' && b <= 'z', b >= '0' && b <= '9', b == '+', b == '-', b == '_':
		default:
			return fmt.Errorf("container: codec name %q contains invalid byte %q", name, b)
		}
	}
	return nil
}

func (c *Container) validate() error {
	if err := validateCodecName(c.Codec); err != nil {
		return err
	}
	if c.Width < 1 || c.Width > MaxWidth {
		return fmt.Errorf("container: width %d out of range [1,%d]", c.Width, MaxWidth)
	}
	if c.Patterns < 0 || c.Patterns > MaxPatterns {
		return fmt.Errorf("container: pattern count %d out of range [0,%d]", c.Patterns, MaxPatterns)
	}
	if err := ValidateDims(c.Width, c.Patterns); err != nil {
		return err
	}
	if len(c.Params) > MaxParamBytes {
		return fmt.Errorf("container: parameter blob %d bytes exceeds %d", len(c.Params), MaxParamBytes)
	}
	if c.NBits < 0 || c.NBits > MaxPayloadBits {
		return fmt.Errorf("container: payload bit count %d out of range [0,%d]", c.NBits, MaxPayloadBits)
	}
	if len(c.Payload) != (c.NBits+7)/8 {
		return fmt.Errorf("container: payload is %d bytes, want %d for %d bits",
			len(c.Payload), (c.NBits+7)/8, c.NBits)
	}
	return nil
}

// readSized reads exactly n bytes without trusting n for a single up-front
// allocation: data arrives in bounded chunks, so a hostile length field
// costs at most one chunk of memory before the stream runs dry.
func readSized(r io.Reader, n int) ([]byte, error) {
	const chunk = 64 << 10
	if n < 0 {
		return nil, fmt.Errorf("container: negative section size %d", n)
	}
	buf := make([]byte, 0, min(n, chunk))
	for len(buf) < n {
		c := min(n-len(buf), chunk)
		tmp := make([]byte, c)
		if _, err := io.ReadFull(r, tmp); err != nil {
			return nil, fmt.Errorf("container: truncated section (%d of %d bytes): %w", len(buf), n, err)
		}
		buf = append(buf, tmp...)
	}
	return buf, nil
}

// WriteV2 serializes a universal container in format v2.
func WriteV2(w io.Writer, c *Container) error {
	if c == nil {
		return fmt.Errorf("container: nil container")
	}
	if err := c.validate(); err != nil {
		return err
	}
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	hdr := []interface{}{
		uint8(Version2), uint8(len(c.Codec)),
	}
	for _, v := range hdr {
		if err := binary.Write(w, binary.BigEndian, v); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, c.Codec); err != nil {
		return err
	}
	for _, v := range []interface{}{
		uint32(c.Width), uint32(c.Patterns), uint32(len(c.Params)),
	} {
		if err := binary.Write(w, binary.BigEndian, v); err != nil {
			return err
		}
	}
	if _, err := w.Write(c.Params); err != nil {
		return err
	}
	if err := binary.Write(w, binary.BigEndian, uint32(c.NBits)); err != nil {
		return err
	}
	_, err := w.Write(c.Payload)
	return err
}

// ReadAny parses a container of any supported version. Legacy v1 files
// (block codecs only) are converted in place: the method byte becomes the
// codec name and the structural MV/codeword header is re-encoded as the
// equivalent block-parameter blob, so callers see one uniform shape.
func ReadAny(r io.Reader) (*Container, error) {
	version, rest, err := Sniff(r)
	if err != nil {
		return nil, err
	}
	if err := discardPrologue(rest); err != nil {
		return nil, err
	}
	switch version {
	case 1:
		f, err := readV1Body(rest)
		if err != nil {
			return nil, err
		}
		return v1ToContainer(f)
	case Version2:
		return readV2Body(rest)
	}
	return nil, fmt.Errorf("container: version 3 is a chunked stream container; read it with tcomp.NewStreamReader (or tdecompress, which auto-detects it)")
}

func readV2Body(r io.Reader) (*Container, error) {
	var nameLen uint8
	if err := binary.Read(r, binary.BigEndian, &nameLen); err != nil {
		return nil, err
	}
	if nameLen == 0 || int(nameLen) > MaxCodecName {
		return nil, fmt.Errorf("container: codec name length %d out of range [1,%d]", nameLen, MaxCodecName)
	}
	name, err := readSized(r, int(nameLen))
	if err != nil {
		return nil, err
	}
	c := &Container{Version: Version2, Codec: string(name)}
	if err := validateCodecName(c.Codec); err != nil {
		return nil, err
	}
	var width, patterns, paramLen uint32
	for _, v := range []interface{}{&width, &patterns, &paramLen} {
		if err := binary.Read(r, binary.BigEndian, v); err != nil {
			return nil, err
		}
	}
	c.Width, c.Patterns = int(width), int(patterns)
	if c.Width < 1 || c.Width > MaxWidth {
		return nil, fmt.Errorf("container: width %d out of range [1,%d]", c.Width, MaxWidth)
	}
	if c.Patterns > MaxPatterns {
		return nil, fmt.Errorf("container: pattern count %d exceeds %d", c.Patterns, MaxPatterns)
	}
	if err := ValidateDims(c.Width, c.Patterns); err != nil {
		return nil, err
	}
	if paramLen > MaxParamBytes {
		return nil, fmt.Errorf("container: parameter blob %d bytes exceeds %d", paramLen, MaxParamBytes)
	}
	if c.Params, err = readSized(r, int(paramLen)); err != nil {
		return nil, err
	}
	var nbits uint32
	if err := binary.Read(r, binary.BigEndian, &nbits); err != nil {
		return nil, err
	}
	if nbits > MaxPayloadBits {
		return nil, fmt.Errorf("container: payload bit count %d exceeds %d", nbits, MaxPayloadBits)
	}
	c.NBits = int(nbits)
	if c.Payload, err = readSized(r, (c.NBits+7)/8); err != nil {
		return nil, err
	}
	return c, nil
}

// v1ToContainer lifts a parsed legacy file into the universal shape.
func v1ToContainer(f *File) (*Container, error) {
	var codec string
	switch f.Method {
	case MethodEA:
		codec = "ea"
	case Method9C:
		codec = "9c"
	case Method9CHC:
		codec = "9chc"
	default:
		return nil, fmt.Errorf("container: v1 file has unknown method %d", uint8(f.Method))
	}
	params, err := EncodeBlockParams(f.Set, f.Code)
	if err != nil {
		return nil, fmt.Errorf("container: v1 conversion: %v", err)
	}
	return &Container{
		Version:  1,
		Codec:    codec,
		Width:    f.Width,
		Patterns: f.Patterns,
		Params:   params,
		Payload:  f.Payload,
		NBits:    f.NBits,
	}, nil
}
