// Format v3: the chunked stream container. Where v2 stores one
// monolithic payload (and therefore forces both ends to buffer the whole
// artifact), v3 carries a sequence of independently compressed chunk
// frames, each covering a fixed number of test patterns, so writer and
// reader run at O(chunk) memory over arbitrarily large test sets — the
// software twin of the paper's bit-serial on-chip decoder.
//
// Layout (big-endian):
//
//	magic      [4]byte  "TCMP"
//	version    uint8    (3)
//	nameLen    uint8    codec-name length (1..MaxCodecName)
//	name       [nameLen]byte  lowercase codec name ([a-z0-9+_-])
//	width      uint32   circuit inputs (1..MaxWidth)
//	chunkPats  uint32   nominal patterns per chunk (1..MaxPatterns)
//	hdrCRC     uint32   CRC-32 (IEEE) of nameLen..chunkPats
//	frames:    zero or more chunk frames
//	  frameLen uint32   body length in bytes (1..MaxFrameBytes);
//	                    0 terminates the frame sequence
//	  body:
//	    patterns uint32 patterns in this chunk (1..chunkPats)
//	    paramLen uint32 + params   per-chunk codec parameter blob
//	    nbits    uint32 + payload  encoded chunk bitstream
//	  crc      uint32   CRC-32 (IEEE) of the body bytes
//	trailer:   after the frameLen==0 terminator
//	  totalPatterns uint32   sum of all chunk pattern counts
//	  crc           uint32   CRC-32 (IEEE) of the 4 totalPatterns bytes
//
// Every length field is bounded before it is trusted and frame bodies are
// read through the same bounded-chunk readSized as v2, so a hostile
// header can never drive an oversized allocation. The per-frame CRC makes
// corruption detectable at chunk granularity — a streaming consumer
// learns about a flipped bit before acting on the chunk, not after
// decoding gigabytes.
package container

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// ErrCRC marks a checksum failure in a chunked stream — header, chunk
// frame, or trailer. Wrapped by the specific mismatch errors; test with
// errors.Is(err, ErrCRC). Callers (tdecompress's operator-facing
// message) branch on it structurally instead of matching error text.
var ErrCRC = errors.New("container: CRC mismatch")

const (
	// Version3 is the chunked stream-container format version.
	Version3 = 3
	// MaxFrameBytes bounds one chunk frame body (64 MiB).
	MaxFrameBytes = 1 << 26
	// MaxStreamPatterns bounds the total pattern count of a chunked
	// stream — the full range of the uint32 trailer. Unlike the buffered
	// v2 format (capped at MaxPatterns because the whole set must fit in
	// memory), a stream is processed one chunk at a time, so the only
	// ceiling is the field width.
	MaxStreamPatterns = 1<<32 - 1
)

// StreamHeader describes a chunked container: the codec every chunk was
// compressed with, the pattern width, and the nominal chunk size.
type StreamHeader struct {
	Codec         string
	Width         int
	ChunkPatterns int
}

func (h *StreamHeader) validate() error {
	if err := validateCodecName(h.Codec); err != nil {
		return err
	}
	if h.Width < 1 || h.Width > MaxWidth {
		return fmt.Errorf("container: width %d out of range [1,%d]", h.Width, MaxWidth)
	}
	if h.ChunkPatterns < 1 || h.ChunkPatterns > MaxPatterns {
		return fmt.Errorf("container: chunk pattern count %d out of range [1,%d]", h.ChunkPatterns, MaxPatterns)
	}
	return nil
}

// Chunk is one independently compressed slice of the test set: its
// pattern count, the codec's parameter blob for this chunk, and the
// encoded payload.
type Chunk struct {
	Patterns int
	Params   []byte
	Payload  []byte
	NBits    int
}

func (c *Chunk) validate(h *StreamHeader) error {
	if c.Patterns < 1 || c.Patterns > h.ChunkPatterns {
		return fmt.Errorf("container: chunk has %d patterns, want 1..%d", c.Patterns, h.ChunkPatterns)
	}
	if err := ValidateDims(h.Width, c.Patterns); err != nil {
		return err
	}
	if len(c.Params) > MaxParamBytes {
		return fmt.Errorf("container: chunk parameter blob %d bytes exceeds %d", len(c.Params), MaxParamBytes)
	}
	if c.NBits < 0 || c.NBits > MaxPayloadBits {
		return fmt.Errorf("container: chunk payload bit count %d out of range [0,%d]", c.NBits, MaxPayloadBits)
	}
	if len(c.Payload) != (c.NBits+7)/8 {
		return fmt.Errorf("container: chunk payload is %d bytes, want %d for %d bits",
			len(c.Payload), (c.NBits+7)/8, c.NBits)
	}
	if bodyLen(c) > MaxFrameBytes {
		return fmt.Errorf("container: chunk frame %d bytes exceeds %d", bodyLen(c), MaxFrameBytes)
	}
	return nil
}

// bodyLen returns the encoded frame-body size: three uint32 length/count
// fields plus the two variable sections.
func bodyLen(c *Chunk) int { return 12 + len(c.Params) + len(c.Payload) }

// ChunkWriter emits a v3 chunked container incrementally: header at
// construction, one frame per WriteChunk, terminator + trailer at Close.
type ChunkWriter struct {
	w      io.Writer
	hdr    StreamHeader
	total  int
	closed bool
}

// NewChunkWriter writes the stream header and returns a writer for the
// frame sequence. It does not buffer: every WriteChunk reaches w before
// returning, so the consumer end of a pipe sees chunks as they are
// produced.
func NewChunkWriter(w io.Writer, hdr StreamHeader) (*ChunkWriter, error) {
	if err := hdr.validate(); err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 4+1+1+len(hdr.Codec)+12)
	buf = append(buf, magic[:]...)
	buf = append(buf, Version3, byte(len(hdr.Codec)))
	buf = append(buf, hdr.Codec...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(hdr.Width))
	buf = binary.BigEndian.AppendUint32(buf, uint32(hdr.ChunkPatterns))
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[5:]))
	if _, err := w.Write(buf); err != nil {
		return nil, err
	}
	return &ChunkWriter{w: w, hdr: hdr}, nil
}

// WriteChunk appends one chunk frame.
func (cw *ChunkWriter) WriteChunk(c *Chunk) error {
	if cw.closed {
		return fmt.Errorf("container: WriteChunk on closed stream")
	}
	if err := c.validate(&cw.hdr); err != nil {
		return err
	}
	if uint64(cw.total)+uint64(c.Patterns) > MaxStreamPatterns {
		return fmt.Errorf("container: total pattern count %d exceeds %d", cw.total+c.Patterns, uint64(MaxStreamPatterns))
	}
	body := make([]byte, 0, bodyLen(c))
	body = binary.BigEndian.AppendUint32(body, uint32(c.Patterns))
	body = binary.BigEndian.AppendUint32(body, uint32(len(c.Params)))
	body = append(body, c.Params...)
	body = binary.BigEndian.AppendUint32(body, uint32(c.NBits))
	body = append(body, c.Payload...)
	frame := make([]byte, 0, 4+len(body)+4)
	frame = binary.BigEndian.AppendUint32(frame, uint32(len(body)))
	frame = append(frame, body...)
	frame = binary.BigEndian.AppendUint32(frame, crc32.ChecksumIEEE(body))
	if _, err := cw.w.Write(frame); err != nil {
		return err
	}
	cw.total += c.Patterns
	return nil
}

// TotalPatterns returns the number of patterns written so far.
func (cw *ChunkWriter) TotalPatterns() int { return cw.total }

// Close writes the frame terminator and the total-pattern trailer. It
// does not close the underlying writer.
func (cw *ChunkWriter) Close() error {
	if cw.closed {
		return nil
	}
	cw.closed = true
	var buf [12]byte
	binary.BigEndian.PutUint32(buf[0:], 0) // terminator
	binary.BigEndian.PutUint32(buf[4:], uint32(cw.total))
	binary.BigEndian.PutUint32(buf[8:], crc32.ChecksumIEEE(buf[4:8]))
	_, err := cw.w.Write(buf[:])
	return err
}

// ChunkReader parses a v3 chunked container incrementally. Construction
// consumes the header; Next returns frames until the terminator, then
// validates the trailer and reports io.EOF.
type ChunkReader struct {
	r     io.Reader
	hdr   StreamHeader
	total int
	done  bool
}

// NewChunkReader parses the stream header (including magic and version,
// through the shared Sniff probe).
func NewChunkReader(r io.Reader) (*ChunkReader, error) {
	version, rest, err := Sniff(r)
	if err != nil {
		return nil, err
	}
	if version != Version3 {
		return nil, fmt.Errorf("container: version %d is not a chunked stream container (want %d)", version, Version3)
	}
	if err := discardPrologue(rest); err != nil {
		return nil, err
	}
	return newChunkReaderBody(rest)
}

// newChunkReaderBody parses the v3 header after magic and version,
// verifying the header CRC before trusting any field past the name
// length.
func newChunkReaderBody(r io.Reader) (*ChunkReader, error) {
	var nameLen uint8
	if err := binary.Read(r, binary.BigEndian, &nameLen); err != nil {
		return nil, err
	}
	if nameLen == 0 || int(nameLen) > MaxCodecName {
		return nil, fmt.Errorf("container: codec name length %d out of range [1,%d]", nameLen, MaxCodecName)
	}
	rest, err := readSized(r, int(nameLen)+12)
	if err != nil {
		return nil, err
	}
	hdrBytes := append([]byte{nameLen}, rest[:len(rest)-4]...)
	crc := binary.BigEndian.Uint32(rest[len(rest)-4:])
	if got := crc32.ChecksumIEEE(hdrBytes); got != crc {
		return nil, fmt.Errorf("container: stream header %w: got %08x, want %08x", ErrCRC, got, crc)
	}
	cr := &ChunkReader{r: r}
	cr.hdr.Codec = string(rest[:nameLen])
	if err := validateCodecName(cr.hdr.Codec); err != nil {
		return nil, err
	}
	cr.hdr.Width = int(binary.BigEndian.Uint32(rest[nameLen : nameLen+4]))
	cr.hdr.ChunkPatterns = int(binary.BigEndian.Uint32(rest[nameLen+4 : nameLen+8]))
	if err := cr.hdr.validate(); err != nil {
		return nil, err
	}
	return cr, nil
}

// Header returns the parsed stream header.
func (cr *ChunkReader) Header() StreamHeader { return cr.hdr }

// TotalPatterns returns the trailer's pattern count; it is only valid
// after Next has returned io.EOF.
func (cr *ChunkReader) TotalPatterns() int { return cr.total }

// Next returns the next chunk frame, verifying its length bounds and
// CRC. At the stream terminator it validates the trailer against the sum
// of chunk pattern counts and returns io.EOF.
func (cr *ChunkReader) Next() (*Chunk, error) {
	if cr.done {
		return nil, io.EOF
	}
	var frameLen uint32
	if err := binary.Read(cr.r, binary.BigEndian, &frameLen); err != nil {
		return nil, fmt.Errorf("container: truncated frame length: %w", err)
	}
	if frameLen == 0 {
		return nil, cr.readTrailer()
	}
	if frameLen > MaxFrameBytes {
		return nil, fmt.Errorf("container: frame length %d exceeds %d", frameLen, MaxFrameBytes)
	}
	body, err := readSized(cr.r, int(frameLen))
	if err != nil {
		return nil, err
	}
	var crc uint32
	if err := binary.Read(cr.r, binary.BigEndian, &crc); err != nil {
		return nil, fmt.Errorf("container: truncated frame CRC: %w", err)
	}
	if got := crc32.ChecksumIEEE(body); got != crc {
		return nil, fmt.Errorf("container: chunk %w: got %08x, want %08x", ErrCRC, got, crc)
	}
	c, err := parseChunkBody(body, &cr.hdr)
	if err != nil {
		return nil, err
	}
	if uint64(cr.total)+uint64(c.Patterns) > MaxStreamPatterns {
		return nil, fmt.Errorf("container: total pattern count %d exceeds %d", cr.total+c.Patterns, uint64(MaxStreamPatterns))
	}
	cr.total += c.Patterns
	return c, nil
}

func (cr *ChunkReader) readTrailer() error {
	var buf [8]byte
	if _, err := io.ReadFull(cr.r, buf[:]); err != nil {
		return fmt.Errorf("container: truncated trailer: %w", err)
	}
	total := binary.BigEndian.Uint32(buf[0:4])
	crc := binary.BigEndian.Uint32(buf[4:8])
	if got := crc32.ChecksumIEEE(buf[0:4]); got != crc {
		return fmt.Errorf("container: trailer %w: got %08x, want %08x", ErrCRC, got, crc)
	}
	if int(total) != cr.total {
		return fmt.Errorf("container: trailer promises %d patterns, frames carried %d", total, cr.total)
	}
	cr.done = true
	return io.EOF
}

// parseChunkBody decodes a CRC-verified frame body.
func parseChunkBody(body []byte, hdr *StreamHeader) (*Chunk, error) {
	take4 := func(what string) (uint32, error) {
		if len(body) < 4 {
			return 0, fmt.Errorf("container: chunk frame truncated at %s", what)
		}
		v := binary.BigEndian.Uint32(body[:4])
		body = body[4:]
		return v, nil
	}
	patterns, err := take4("pattern count")
	if err != nil {
		return nil, err
	}
	paramLen, err := take4("parameter length")
	if err != nil {
		return nil, err
	}
	if paramLen > MaxParamBytes || int(paramLen) > len(body) {
		return nil, fmt.Errorf("container: chunk parameter blob %d bytes out of bounds", paramLen)
	}
	params := body[:paramLen:paramLen]
	body = body[paramLen:]
	nbits, err := take4("payload bit count")
	if err != nil {
		return nil, err
	}
	if nbits > MaxPayloadBits {
		return nil, fmt.Errorf("container: chunk payload bit count %d exceeds %d", nbits, MaxPayloadBits)
	}
	if len(body) != (int(nbits)+7)/8 {
		return nil, fmt.Errorf("container: chunk payload is %d bytes, want %d for %d bits",
			len(body), (int(nbits)+7)/8, nbits)
	}
	c := &Chunk{Patterns: int(patterns), Params: params, Payload: body, NBits: int(nbits)}
	if err := c.validate(hdr); err != nil {
		return nil, err
	}
	return c, nil
}
