package container

import (
	"bytes"
	"fmt"
	"io"
)

// prologueLen is the length of the magic + version prologue shared by
// every container version.
const prologueLen = 5

// Sniff probes the container version of the stream on r by reading the
// five-byte magic + version prologue. It returns the detected version
// (1, 2, or Version3) and a reader that replays the full stream —
// prologue included — so the caller can hand rest to whichever parser
// the version calls for (ReadAny for v1/v2, NewChunkReader for v3)
// without seeking. This is the one detection path shared by tdecompress,
// the streaming reader, and the compression service; there is no second
// copy of the magic/version peek to drift.
//
// On error (short input, bad magic, unknown version) rest still replays
// whatever was consumed, so the caller can report or re-route the raw
// bytes.
func Sniff(r io.Reader) (version int, rest io.Reader, err error) {
	buf := make([]byte, prologueLen)
	n, err := io.ReadFull(r, buf)
	rest = io.MultiReader(bytes.NewReader(buf[:n]), r)
	if err != nil {
		return 0, rest, fmt.Errorf("container: truncated prologue (%d of %d bytes): %w", n, prologueLen, err)
	}
	if [4]byte(buf[:4]) != magic {
		return 0, rest, fmt.Errorf("container: bad magic %q", buf[:4])
	}
	switch v := int(buf[4]); v {
	case 1, Version2, Version3:
		return v, rest, nil
	default:
		return 0, rest, fmt.Errorf("container: unsupported version %d", buf[4])
	}
}

// discardPrologue consumes the five prologue bytes a successful Sniff
// left replayable on rest, positioning it at the version-specific body.
func discardPrologue(rest io.Reader) error {
	_, err := io.CopyN(io.Discard, rest, prologueLen)
	return err
}
