package container

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/blockcode"
	"repro/internal/ninec"
	"repro/internal/testset"
)

func sample(t *testing.T, seed int64) (*testset.TestSet, *blockcode.Result) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	ts := testset.Random(16, 30, 0.3, r)
	res, err := ninec.CompressHC(ts, 8)
	if err != nil {
		t.Fatal(err)
	}
	return ts, res
}

func TestRoundTrip(t *testing.T) {
	ts, res := sample(t, 1)
	var buf bytes.Buffer
	if err := Write(&buf, Method9CHC, ts.Width, ts.NumPatterns(), res); err != nil {
		t.Fatal(err)
	}
	f, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Method != Method9CHC || f.K != 8 || f.Width != 16 || f.Patterns != 30 {
		t.Fatalf("header mismatch: %+v", f)
	}
	if f.NBits != res.Stream.Len() {
		t.Fatalf("payload bits %d want %d", f.NBits, res.Stream.Len())
	}
	// MVs preserved exactly.
	for i, mv := range res.Set.MVs {
		if !mv.Equal(f.Set.MVs[i]) {
			t.Fatalf("MV %d changed: %s vs %s", i, mv.StringU(), f.Set.MVs[i].StringU())
		}
	}
	// Decoding through the container must reproduce the test set.
	blocks := blockcode.Partition(ts, f.K)
	dec, err := blockcode.Decode(f.Reader(), f.Set, f.Code, f.NumBlocks())
	if err != nil {
		t.Fatal(err)
	}
	if err := blockcode.Verify(blocks, dec); err != nil {
		t.Fatal(err)
	}
}

func TestNumBlocksPadding(t *testing.T) {
	ts, res := sample(t, 2)
	var buf bytes.Buffer
	if err := Write(&buf, Method9C, ts.Width, ts.NumPatterns(), res); err != nil {
		t.Fatal(err)
	}
	f, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumBlocks() != len(blockcode.Partition(ts, 8)) {
		t.Fatal("NumBlocks disagrees with Partition")
	}
}

func TestBadMagicAndTruncation(t *testing.T) {
	ts, res := sample(t, 3)
	var buf bytes.Buffer
	if err := Write(&buf, MethodEA, ts.Width, ts.NumPatterns(), res); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	bad := append([]byte("XXXX"), raw[4:]...)
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	for _, cut := range []int{3, 10, len(raw) / 2, len(raw) - 1} {
		if _, err := Read(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Corrupt version byte.
	corrupt := append([]byte(nil), raw...)
	corrupt[4] = 9
	if _, err := Read(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestWriteWithoutStream(t *testing.T) {
	_, res := sample(t, 4)
	res.Stream = nil
	var buf bytes.Buffer
	if err := Write(&buf, MethodEA, 16, 30, res); err == nil {
		t.Fatal("missing stream accepted")
	}
}

func TestV2RoundTrip(t *testing.T) {
	want := &Container{
		Version:  Version2,
		Codec:    "selhuff",
		Width:    32,
		Patterns: 10,
		Params:   []byte{1, 2, 3, 4, 5},
		Payload:  []byte{0xAB, 0xCD, 0xE0},
		NBits:    20,
	}
	var buf bytes.Buffer
	if err := WriteV2(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAny(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Codec != want.Codec || got.Width != want.Width || got.Patterns != want.Patterns ||
		got.NBits != want.NBits || !bytes.Equal(got.Params, want.Params) ||
		!bytes.Equal(got.Payload, want.Payload) {
		t.Fatalf("round trip changed container: %+v want %+v", got, want)
	}
}

// TestReadAnyV1 checks that legacy v1 files surface through the
// universal reader with the method lifted to a codec name and the
// structural header re-encoded as a block-parameter blob.
func TestReadAnyV1(t *testing.T) {
	ts, res := sample(t, 5)
	var buf bytes.Buffer
	if err := Write(&buf, Method9CHC, ts.Width, ts.NumPatterns(), res); err != nil {
		t.Fatal(err)
	}
	c, err := ReadAny(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if c.Version != 1 || c.Codec != "9chc" || c.Width != 16 || c.Patterns != 30 {
		t.Fatalf("v1 conversion header mismatch: %+v", c)
	}
	set, code, err := DecodeBlockParams(c.Params)
	if err != nil {
		t.Fatal(err)
	}
	if set.K != res.Set.K || len(set.MVs) != len(res.Set.MVs) {
		t.Fatalf("block params changed: K=%d nMVs=%d", set.K, len(set.MVs))
	}
	for i, mv := range res.Set.MVs {
		if !mv.Equal(set.MVs[i]) {
			t.Fatalf("MV %d changed across v1 conversion", i)
		}
	}
	blocks, err := blockcode.Decode(c.Reader(), set, code, len(blockcode.Partition(ts, set.K)))
	if err != nil {
		t.Fatal(err)
	}
	if err := blockcode.Verify(blockcode.Partition(ts, set.K), blocks); err != nil {
		t.Fatal(err)
	}
}

func TestBlockParamsRoundTrip(t *testing.T) {
	_, res := sample(t, 6)
	blob, err := EncodeBlockParams(res.Set, res.Code)
	if err != nil {
		t.Fatal(err)
	}
	set, code, err := DecodeBlockParams(blob)
	if err != nil {
		t.Fatal(err)
	}
	if set.K != res.Set.K || len(set.MVs) != len(res.Set.MVs) {
		t.Fatalf("dimensions changed: K=%d nMVs=%d", set.K, len(set.MVs))
	}
	for i := range res.Set.MVs {
		if !res.Set.MVs[i].Equal(set.MVs[i]) {
			t.Fatalf("MV %d changed", i)
		}
		if code.Lengths[i] != res.Code.Lengths[i] || code.Words[i] != res.Code.Words[i] {
			t.Fatalf("codeword %d changed", i)
		}
	}
	if _, _, err := DecodeBlockParams(append(blob, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, _, err := DecodeBlockParams(blob[:len(blob)-1]); err == nil {
		t.Fatal("truncated blob accepted")
	}
}

// TestHostileHeaders feeds headers whose size fields vastly exceed the
// stream body: parsing must fail fast without allocating the claimed
// sizes (the historical OOM vector for cmd/tdecompress).
func TestHostileHeaders(t *testing.T) {
	be32 := func(v uint32) []byte { return []byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)} }
	v2hdr := func(width, patterns, paramLen uint32) []byte {
		b := []byte{'T', 'C', 'M', 'P', 2, 2, 'e', 'a'}
		b = append(b, be32(width)...)
		b = append(b, be32(patterns)...)
		b = append(b, be32(paramLen)...)
		return b
	}
	cases := map[string][]byte{
		// v2: 4-billion-bit payload claim, empty body.
		"v2 huge nbits": append(v2hdr(8, 2, 0), be32(0xFFFFFFFF)...),
		// v2: param blob larger than the format cap.
		"v2 huge params": v2hdr(8, 2, 0xFFFFFFFF),
		// v2: zero width.
		"v2 zero width": append(v2hdr(0, 2, 0), be32(0)...),
		// v2: dimension caps.
		"v2 width over cap":    append(v2hdr(MaxWidth+1, 2, 0), be32(0)...),
		"v2 patterns over cap": append(v2hdr(8, MaxPatterns+1, 0), be32(0)...),
		// v2: bad codec name byte.
		"v2 bad codec name": {'T', 'C', 'M', 'P', 2, 2, 'E', 'A',
			0, 0, 0, 8, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 0},
		// v2: zero-length codec name.
		"v2 empty codec name": {'T', 'C', 'M', 'P', 2, 0},
		// v1: 65535 MVs claimed, no MV data.
		"v1 huge nMVs": {'T', 'C', 'M', 'P', 1, 1, 0, 8, 0, 0, 0, 8, 0, 0, 0, 2, 0xFF, 0xFF},
		// v1: zero block length (division-by-zero guard).
		"v1 zero k": {'T', 'C', 'M', 'P', 1, 1, 0, 0, 0, 0, 0, 8, 0, 0, 0, 2, 0, 1},
		// v1: zero MVs.
		"v1 zero MVs": {'T', 'C', 'M', 'P', 1, 1, 0, 4, 0, 0, 0, 8, 0, 0, 0, 2, 0, 0},
		// v1: unknown method byte.
		"v1 unknown method": {'T', 'C', 'M', 'P', 1, 77, 0, 4, 0, 0, 0, 8, 0, 0, 0, 2, 0, 1},
	}
	for name, data := range cases {
		if _, err := ReadAny(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// The same hostile v1 bodies must also be rejected by the legacy
	// entry point cmd/tdecompress historically used.
	for _, name := range []string{"v1 huge nMVs", "v1 zero k", "v1 zero MVs"} {
		if _, err := Read(bytes.NewReader(cases[name])); err == nil {
			t.Errorf("legacy Read: %s accepted", name)
		}
	}
}

func TestWriteV2Invalid(t *testing.T) {
	base := func() *Container {
		return &Container{Version: Version2, Codec: "ea", Width: 8, Patterns: 2,
			Payload: []byte{0xFF}, NBits: 8}
	}
	cases := map[string]func(*Container){
		"empty codec":      func(c *Container) { c.Codec = "" },
		"bad codec chars":  func(c *Container) { c.Codec = "EA" },
		"long codec":       func(c *Container) { c.Codec = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa" },
		"zero width":       func(c *Container) { c.Width = 0 },
		"payload mismatch": func(c *Container) { c.NBits = 17 },
		"negative nbits":   func(c *Container) { c.NBits = -1 },
	}
	for name, mutate := range cases {
		c := base()
		mutate(c)
		if err := WriteV2(&bytes.Buffer{}, c); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if err := WriteV2(&bytes.Buffer{}, nil); err == nil {
		t.Error("nil container accepted")
	}
}

func TestParseMethod(t *testing.T) {
	for _, c := range []struct {
		s  string
		m  Method
		ok bool
	}{
		{"ea", MethodEA, true}, {"9c", Method9C, true},
		{"9chc", Method9CHC, true}, {"9c+hc", Method9CHC, true},
		{"lzw", 0, false},
	} {
		m, err := ParseMethod(c.s)
		if (err == nil) != c.ok || (err == nil && m != c.m) {
			t.Errorf("ParseMethod(%q) = %v, %v", c.s, m, err)
		}
	}
	if MethodEA.String() != "ea" || Method(77).String() == "" {
		t.Fatal("Method.String broken")
	}
}
