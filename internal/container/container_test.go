package container

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/blockcode"
	"repro/internal/ninec"
	"repro/internal/testset"
)

func sample(t *testing.T, seed int64) (*testset.TestSet, *blockcode.Result) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	ts := testset.Random(16, 30, 0.3, r)
	res, err := ninec.CompressHC(ts, 8)
	if err != nil {
		t.Fatal(err)
	}
	return ts, res
}

func TestRoundTrip(t *testing.T) {
	ts, res := sample(t, 1)
	var buf bytes.Buffer
	if err := Write(&buf, Method9CHC, ts.Width, ts.NumPatterns(), res); err != nil {
		t.Fatal(err)
	}
	f, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Method != Method9CHC || f.K != 8 || f.Width != 16 || f.Patterns != 30 {
		t.Fatalf("header mismatch: %+v", f)
	}
	if f.NBits != res.Stream.Len() {
		t.Fatalf("payload bits %d want %d", f.NBits, res.Stream.Len())
	}
	// MVs preserved exactly.
	for i, mv := range res.Set.MVs {
		if !mv.Equal(f.Set.MVs[i]) {
			t.Fatalf("MV %d changed: %s vs %s", i, mv.StringU(), f.Set.MVs[i].StringU())
		}
	}
	// Decoding through the container must reproduce the test set.
	blocks := blockcode.Partition(ts, f.K)
	dec, err := blockcode.Decode(f.Reader(), f.Set, f.Code, f.NumBlocks())
	if err != nil {
		t.Fatal(err)
	}
	if err := blockcode.Verify(blocks, dec); err != nil {
		t.Fatal(err)
	}
}

func TestNumBlocksPadding(t *testing.T) {
	ts, res := sample(t, 2)
	var buf bytes.Buffer
	if err := Write(&buf, Method9C, ts.Width, ts.NumPatterns(), res); err != nil {
		t.Fatal(err)
	}
	f, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumBlocks() != len(blockcode.Partition(ts, 8)) {
		t.Fatal("NumBlocks disagrees with Partition")
	}
}

func TestBadMagicAndTruncation(t *testing.T) {
	ts, res := sample(t, 3)
	var buf bytes.Buffer
	if err := Write(&buf, MethodEA, ts.Width, ts.NumPatterns(), res); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	bad := append([]byte("XXXX"), raw[4:]...)
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	for _, cut := range []int{3, 10, len(raw) / 2, len(raw) - 1} {
		if _, err := Read(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Corrupt version byte.
	corrupt := append([]byte(nil), raw...)
	corrupt[4] = 9
	if _, err := Read(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestWriteWithoutStream(t *testing.T) {
	_, res := sample(t, 4)
	res.Stream = nil
	var buf bytes.Buffer
	if err := Write(&buf, MethodEA, 16, 30, res); err == nil {
		t.Fatal("missing stream accepted")
	}
}

func TestParseMethod(t *testing.T) {
	for _, c := range []struct {
		s  string
		m  Method
		ok bool
	}{
		{"ea", MethodEA, true}, {"9c", Method9C, true},
		{"9chc", Method9CHC, true}, {"9c+hc", Method9CHC, true},
		{"lzw", 0, false},
	} {
		m, err := ParseMethod(c.s)
		if (err == nil) != c.ok || (err == nil && m != c.m) {
			t.Errorf("ParseMethod(%q) = %v, %v", c.s, m, err)
		}
	}
	if MethodEA.String() != "ea" || Method(77).String() == "" {
		t.Fatal("Method.String broken")
	}
}
