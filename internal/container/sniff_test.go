package container

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestSniffVersions: the shared probe detects every format version and
// leaves a replayable stream behind — the parsed container must come
// out of rest exactly as if the caller had never sniffed.
func TestSniffVersions(t *testing.T) {
	v1 := fuzzSeedV1(t)
	v2 := fuzzSeedV2(t)

	var v3buf bytes.Buffer
	cw, err := NewChunkWriter(&v3buf, StreamHeader{Codec: "rl", Width: 4, ChunkPatterns: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.WriteChunk(&Chunk{Patterns: 2, Payload: []byte{0xA0}, NBits: 4}); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	v3 := v3buf.Bytes()

	cases := []struct {
		name    string
		data    []byte
		version int
	}{
		{"v1", v1, 1},
		{"v2", v2, Version2},
		{"v3", v3, Version3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			version, rest, err := Sniff(bytes.NewReader(tc.data))
			if err != nil {
				t.Fatal(err)
			}
			if version != tc.version {
				t.Fatalf("Sniff = %d, want %d", version, tc.version)
			}
			replay, err := io.ReadAll(rest)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(replay, tc.data) {
				t.Fatal("rest does not replay the full stream")
			}
		})
	}

	// The replayed stream feeds the version-appropriate parser.
	_, rest, err := Sniff(bytes.NewReader(v2))
	if err != nil {
		t.Fatal(err)
	}
	c, err := ReadAny(rest)
	if err != nil {
		t.Fatal(err)
	}
	if c.Codec != "golomb" {
		t.Fatalf("ReadAny after Sniff: codec %q", c.Codec)
	}
	_, rest, err = Sniff(bytes.NewReader(v3))
	if err != nil {
		t.Fatal(err)
	}
	cr, err := NewChunkReader(rest)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Header().Codec != "rl" {
		t.Fatalf("NewChunkReader after Sniff: codec %q", cr.Header().Codec)
	}
}

func TestSniffRejections(t *testing.T) {
	if _, _, err := Sniff(bytes.NewReader([]byte("TC"))); err == nil {
		t.Fatal("short input accepted")
	}
	if _, _, err := Sniff(strings.NewReader("NOPE!")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, _, err := Sniff(bytes.NewReader([]byte{'T', 'C', 'M', 'P', 99})); err == nil {
		t.Fatal("unknown version accepted")
	}
	// Even on error the consumed bytes replay, so a caller can report
	// or re-route the raw prefix.
	_, rest, err := Sniff(strings.NewReader("NOPE!"))
	if err == nil {
		t.Fatal("bad magic accepted")
	}
	replay, _ := io.ReadAll(rest)
	if string(replay) != "NOPE!" {
		t.Fatalf("error path replay %q", replay)
	}
}
