// Per-codec parameter blobs for the v2 universal container. The block
// codecs (ea, 9c, 9chc) share one blob layout — essentially the v1
// structural header relocated behind the opaque-params indirection:
//
//	k      uint16   block length (1..MaxBlockLen)
//	nMVs   uint16   matching-vector count (1..65535)
//	per MV: k trits packed 2 bits each (00=U, 01=0, 10=1), byte-padded
//	per MV: codeword length uint8 (0..64), codeword bits uint64
//
// The scalar coders define their own micro-blobs in the public package
// (golomb: M uint32; rl: b uint8; fdr: empty; selhuff: dictionary+code).
package container

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/blockcode"
	"repro/internal/huffman"
	"repro/internal/tritvec"
)

// MaxBlockLen bounds the block length K a blob may declare.
const MaxBlockLen = 1 << 12

// maxCodewordLen is the widest codeword the uint64 word field can carry.
const maxCodewordLen = 64

// EncodeBlockParams serializes an MV set and its codeword table as a
// block-codec parameter blob.
func EncodeBlockParams(set *blockcode.MVSet, code *huffman.Code) ([]byte, error) {
	if set == nil || code == nil {
		return nil, fmt.Errorf("container: nil MV set or code")
	}
	if set.K < 1 || set.K > MaxBlockLen {
		return nil, fmt.Errorf("container: block length %d out of range [1,%d]", set.K, MaxBlockLen)
	}
	if len(set.MVs) < 1 || len(set.MVs) > 0xFFFF {
		return nil, fmt.Errorf("container: MV count %d out of range [1,65535]", len(set.MVs))
	}
	if len(code.Lengths) != len(set.MVs) || len(code.Words) != len(set.MVs) {
		return nil, fmt.Errorf("container: code has %d/%d entries for %d MVs",
			len(code.Lengths), len(code.Words), len(set.MVs))
	}
	var buf bytes.Buffer
	if err := binary.Write(&buf, binary.BigEndian, uint16(set.K)); err != nil {
		return nil, err
	}
	if err := binary.Write(&buf, binary.BigEndian, uint16(len(set.MVs))); err != nil {
		return nil, err
	}
	for _, mv := range set.MVs {
		if err := writeMV(&buf, mv); err != nil {
			return nil, err
		}
	}
	for i := range set.MVs {
		l := code.Lengths[i]
		if l < 0 || l > maxCodewordLen {
			return nil, fmt.Errorf("container: codeword %d length %d out of range [0,%d]", i, l, maxCodewordLen)
		}
		if err := binary.Write(&buf, binary.BigEndian, uint8(l)); err != nil {
			return nil, err
		}
		if err := binary.Write(&buf, binary.BigEndian, code.Words[i]); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// DecodeBlockParams parses a block-codec parameter blob, validating the
// dimensions and that the stored code is prefix-free. The blob must be
// exactly consumed.
func DecodeBlockParams(blob []byte) (*blockcode.MVSet, *huffman.Code, error) {
	r := bytes.NewReader(blob)
	var k, nMVs uint16
	for _, v := range []interface{}{&k, &nMVs} {
		if err := binary.Read(r, binary.BigEndian, v); err != nil {
			return nil, nil, fmt.Errorf("container: truncated block params: %v", err)
		}
	}
	set, code, err := readBlockTables(r, int(k), int(nMVs))
	if err != nil {
		return nil, nil, err
	}
	if r.Len() != 0 {
		return nil, nil, fmt.Errorf("container: %d trailing bytes in block params", r.Len())
	}
	return set, code, nil
}

// readBlockTables reads the MV table and codeword list shared by the v1
// body and the v2 block-parameter blob.
func readBlockTables(r io.Reader, k, nMVs int) (*blockcode.MVSet, *huffman.Code, error) {
	if k < 1 || k > MaxBlockLen {
		return nil, nil, fmt.Errorf("container: block length %d out of range [1,%d]", k, MaxBlockLen)
	}
	if nMVs < 1 {
		return nil, nil, fmt.Errorf("container: MV count %d out of range [1,65535]", nMVs)
	}
	mvs := make([]tritvec.Vector, nMVs)
	for i := range mvs {
		mv, err := readMV(r, k)
		if err != nil {
			return nil, nil, err
		}
		mvs[i] = mv
	}
	set, err := blockcode.NewMVSet(k, mvs)
	if err != nil {
		return nil, nil, err
	}
	lengths := make([]int, nMVs)
	words := make([]uint64, nMVs)
	for i := range lengths {
		var l uint8
		if err := binary.Read(r, binary.BigEndian, &l); err != nil {
			return nil, nil, err
		}
		if int(l) > maxCodewordLen {
			return nil, nil, fmt.Errorf("container: codeword %d length %d exceeds %d", i, l, maxCodewordLen)
		}
		if err := binary.Read(r, binary.BigEndian, &words[i]); err != nil {
			return nil, nil, err
		}
		lengths[i] = int(l)
	}
	code := &huffman.Code{Lengths: lengths, Words: words}
	if !code.IsPrefixFree() {
		return nil, nil, fmt.Errorf("container: stored code is not prefix-free")
	}
	return set, code, nil
}
