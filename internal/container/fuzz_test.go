package container

// FuzzContainerRoundTrip feeds untrusted bytes to the container parser:
// parsing must either error out cleanly or yield a container that
// re-serializes (as v2) and re-parses to the same value — never panic,
// never over-allocate on a hostile header.

import (
	"bytes"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/blockcode"
	"repro/internal/huffman"
	"repro/internal/tritvec"
)

// fuzzSeedV1 builds a small valid legacy container.
func fuzzSeedV1(tb testing.TB) []byte {
	tb.Helper()
	mv := tritvec.New(4)
	mv.Set(0, tritvec.Zero)
	mv.Set(1, tritvec.One)
	set, err := blockcode.NewMVSet(4, []tritvec.Vector{mv, tritvec.New(4)})
	if err != nil {
		tb.Fatal(err)
	}
	code, err := huffman.Explicit([]int{1, 1}, []uint64{0, 1})
	if err != nil {
		tb.Fatal(err)
	}
	w := bitstream.NewWriter()
	w.WriteBits(0b10110, 5)
	res := &blockcode.Result{Set: set, Code: code, Stream: w}
	var buf bytes.Buffer
	if err := Write(&buf, MethodEA, 4, 2, res); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// fuzzSeedV2 builds a small valid v2 container.
func fuzzSeedV2(tb testing.TB) []byte {
	tb.Helper()
	var buf bytes.Buffer
	err := WriteV2(&buf, &Container{
		Version:  Version2,
		Codec:    "golomb",
		Width:    8,
		Patterns: 3,
		Params:   []byte{0, 0, 0, 4},
		Payload:  []byte{0xA5, 0xC0},
		NBits:    10,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzContainerRoundTrip(f *testing.F) {
	f.Add(fuzzSeedV1(f))
	f.Add(fuzzSeedV2(f))
	f.Add([]byte("TCMP"))
	f.Add([]byte{'T', 'C', 'M', 'P', 2, 0})
	f.Add([]byte{'T', 'C', 'M', 'P', 1, 1, 0, 4, 0, 0, 0, 8, 0, 0, 0, 2, 0, 1})
	// Hostile: v2 header claiming a 4-billion-bit payload with no body.
	f.Add([]byte{'T', 'C', 'M', 'P', 2, 2, 'e', 'a',
		0, 0, 0, 8, 0, 0, 0, 2, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ReadAny(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly
		}
		// Accepted input must re-serialize and re-parse identically.
		var buf bytes.Buffer
		if err := WriteV2(&buf, c); err != nil {
			t.Fatalf("parsed container fails to re-serialize: %v", err)
		}
		c2, err := ReadAny(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-serialized container fails to parse: %v", err)
		}
		if c2.Codec != c.Codec || c2.Width != c.Width || c2.Patterns != c.Patterns ||
			c2.NBits != c.NBits || !bytes.Equal(c2.Params, c.Params) ||
			!bytes.Equal(c2.Payload, c.Payload) {
			t.Fatalf("round trip changed container:\n got %+v\nwant %+v", c2, c)
		}
	})
}
