// Package container defines the on-disk format for compressed test data:
// a self-describing header followed by the encoded bitstream. The format
// is what a tester would ship together with the decoder configuration.
//
// Two format versions exist. Version 2 (see v2.go) is the universal
// container written by all current tools: it names the codec and carries
// an opaque per-codec parameter blob, so every registered compression
// scheme round-trips. Version 1, kept readable for compatibility, is the
// legacy block-codec-only layout (big-endian):
//
//	magic   [4]byte  "TCMP"
//	version uint8    (1)
//	method  uint8    (Method)
//	k       uint16   block length
//	width   uint32   circuit inputs
//	tCount  uint32   pattern count
//	nMVs    uint16   matching vector count
//	per MV: k trits packed 2 bits each (00=U, 01=0, 10=1), byte-padded
//	per MV: codeword length uint8, codeword bits uint64
//	nbits   uint32   payload bit count
//	payload ceil(nbits/8) bytes
//
// Both readers bounds-check every header field (dimension caps, chunked
// section reads) before allocating, so truncated or hostile containers
// fail fast instead of exhausting memory.
package container

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/bitstream"
	"repro/internal/blockcode"
	"repro/internal/huffman"
	"repro/internal/tritvec"
)

// Method identifies the compression scheme.
type Method uint8

// Known methods.
const (
	MethodEA Method = iota + 1
	Method9C
	Method9CHC
)

// String names the method.
func (m Method) String() string {
	switch m {
	case MethodEA:
		return "ea"
	case Method9C:
		return "9c"
	case Method9CHC:
		return "9c+hc"
	}
	return fmt.Sprintf("method(%d)", uint8(m))
}

// ParseMethod converts a CLI name to a Method.
func ParseMethod(s string) (Method, error) {
	switch s {
	case "ea":
		return MethodEA, nil
	case "9c":
		return Method9C, nil
	case "9chc", "9c+hc":
		return Method9CHC, nil
	}
	return 0, fmt.Errorf("container: unknown method %q", s)
}

var magic = [4]byte{'T', 'C', 'M', 'P'}

// File is a parsed compressed container.
type File struct {
	Method   Method
	K        int
	Width    int
	Patterns int
	Set      *blockcode.MVSet
	Code     *huffman.Code
	Payload  []byte
	NBits    int
}

// Write serializes a compression result.
func Write(w io.Writer, method Method, width, patterns int, res *blockcode.Result) error {
	if res.Stream == nil {
		return fmt.Errorf("container: result has no encoded stream")
	}
	if len(res.Set.MVs) > 0xFFFF || res.Set.K > 0xFFFF {
		return fmt.Errorf("container: dimensions exceed format limits")
	}
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	hdr := []interface{}{
		uint8(1), uint8(method), uint16(res.Set.K), uint32(width), uint32(patterns),
		uint16(len(res.Set.MVs)),
	}
	for _, v := range hdr {
		if err := binary.Write(w, binary.BigEndian, v); err != nil {
			return err
		}
	}
	for _, mv := range res.Set.MVs {
		if err := writeMV(w, mv); err != nil {
			return err
		}
	}
	for i := range res.Set.MVs {
		if err := binary.Write(w, binary.BigEndian, uint8(res.Code.Lengths[i])); err != nil {
			return err
		}
		if err := binary.Write(w, binary.BigEndian, res.Code.Words[i]); err != nil {
			return err
		}
	}
	if err := binary.Write(w, binary.BigEndian, uint32(res.Stream.Len())); err != nil {
		return err
	}
	_, err := w.Write(res.Stream.Bytes())
	return err
}

func writeMV(w io.Writer, mv tritvec.Vector) error {
	k := mv.Len()
	buf := make([]byte, (2*k+7)/8)
	for i := 0; i < k; i++ {
		var code byte
		switch mv.Get(i) {
		case tritvec.Zero:
			code = 1
		case tritvec.One:
			code = 2
		}
		bit := 2 * i
		buf[bit/8] |= code << uint(6-bit%8)
	}
	_, err := w.Write(buf)
	return err
}

func readMV(r io.Reader, k int) (tritvec.Vector, error) {
	buf := make([]byte, (2*k+7)/8)
	if _, err := io.ReadFull(r, buf); err != nil {
		return tritvec.Vector{}, err
	}
	mv := tritvec.New(k)
	for i := 0; i < k; i++ {
		bit := 2 * i
		code := buf[bit/8] >> uint(6-bit%8) & 3
		switch code {
		case 1:
			mv.Set(i, tritvec.Zero)
		case 2:
			mv.Set(i, tritvec.One)
		case 0:
			// U
		default:
			return tritvec.Vector{}, fmt.Errorf("container: invalid trit code %d", code)
		}
	}
	return mv, nil
}

// Read parses a legacy v1 container. New code should prefer ReadAny,
// which also understands the universal v2 format.
func Read(r io.Reader) (*File, error) {
	var m [4]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return nil, err
	}
	if m != magic {
		return nil, fmt.Errorf("container: bad magic %q", m)
	}
	var version uint8
	if err := binary.Read(r, binary.BigEndian, &version); err != nil {
		return nil, err
	}
	if version != 1 {
		return nil, fmt.Errorf("container: unsupported version %d", version)
	}
	return readV1Body(r)
}

// readV1Body parses everything after the magic and version byte of a v1
// container, bounds-checking each dimension before it drives an
// allocation.
func readV1Body(r io.Reader) (*File, error) {
	var method uint8
	var k, nMVs uint16
	var width, patterns uint32
	for _, v := range []interface{}{&method, &k, &width, &patterns, &nMVs} {
		if err := binary.Read(r, binary.BigEndian, v); err != nil {
			return nil, err
		}
	}
	f := &File{Method: Method(method), K: int(k), Width: int(width), Patterns: int(patterns)}
	if f.Width < 1 || f.Width > MaxWidth {
		return nil, fmt.Errorf("container: width %d out of range [1,%d]", f.Width, MaxWidth)
	}
	if f.Patterns > MaxPatterns {
		return nil, fmt.Errorf("container: pattern count %d exceeds %d", f.Patterns, MaxPatterns)
	}
	if err := ValidateDims(f.Width, f.Patterns); err != nil {
		return nil, err
	}
	set, code, err := readBlockTables(r, f.K, int(nMVs))
	if err != nil {
		return nil, err
	}
	f.Set, f.Code = set, code
	var nbits uint32
	if err := binary.Read(r, binary.BigEndian, &nbits); err != nil {
		return nil, err
	}
	if nbits > MaxPayloadBits {
		return nil, fmt.Errorf("container: payload bit count %d exceeds %d", nbits, MaxPayloadBits)
	}
	f.NBits = int(nbits)
	if f.Payload, err = readSized(r, (f.NBits+7)/8); err != nil {
		return nil, err
	}
	return f, nil
}

// Reader returns a bitstream reader over the payload.
func (f *File) Reader() *bitstream.Reader { return bitstream.NewReader(f.Payload, f.NBits) }

// NumBlocks returns the input-block count implied by the dimensions.
func (f *File) NumBlocks() int {
	total := f.Width * f.Patterns
	return (total + f.K - 1) / f.K
}
