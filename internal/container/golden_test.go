package container

// Golden-file tests pinning the container v2 byte layout. Future PRs
// must not change these bytes: v2 is a published format, and any layout
// change needs a version bump plus a new golden file, not an edit here.
//
// Regenerate (only with a deliberate format-version bump):
//
//	go test ./internal/container -run TestGolden -update

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/blockcode"
	"repro/internal/huffman"
	"repro/internal/tritvec"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenScalar is a fixed golomb-style container exercising the scalar
// parameter blob path.
func goldenScalar(t *testing.T) *Container {
	t.Helper()
	return &Container{
		Version:  Version2,
		Codec:    "golomb",
		Width:    12,
		Patterns: 4,
		Params:   []byte{0x00, 0x00, 0x00, 0x04}, // M=4, uint32 BE
		Payload:  []byte{0xDE, 0xAD, 0xBE},
		NBits:    21,
	}
}

// goldenBlock is a fixed block-codec container exercising the MV-table
// parameter blob path (EncodeBlockParams layout).
func goldenBlock(t *testing.T) *Container {
	t.Helper()
	mv1 := tritvec.New(4) // 01XU
	mv1.Set(0, tritvec.Zero)
	mv1.Set(1, tritvec.One)
	mv2 := tritvec.New(4) // UUUU
	set, err := blockcode.NewMVSet(4, []tritvec.Vector{mv1, mv2})
	if err != nil {
		t.Fatal(err)
	}
	code, err := huffman.Explicit([]int{1, 1}, []uint64{0b0, 0b1})
	if err != nil {
		t.Fatal(err)
	}
	params, err := EncodeBlockParams(set, code)
	if err != nil {
		t.Fatal(err)
	}
	return &Container{
		Version:  Version2,
		Codec:    "ea",
		Width:    8,
		Patterns: 2,
		Params:   params,
		Payload:  []byte{0b10110100, 0b01000000},
		NBits:    10,
	}
}

func TestGoldenV2Layout(t *testing.T) {
	cases := []struct {
		file  string
		build func(*testing.T) *Container
	}{
		{"golomb_v2.bin", goldenScalar},
		{"block_v2.bin", goldenBlock},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			c := tc.build(t)
			var buf bytes.Buffer
			if err := WriteV2(&buf, c); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.file)
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update after a deliberate format change): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("container v2 byte layout changed!\n got % x\nwant % x\n"+
					"The on-disk format is pinned; a layout change requires a version bump.",
					buf.Bytes(), want)
			}
			// The golden bytes must also parse back to the same container.
			got, err := ReadAny(bytes.NewReader(want))
			if err != nil {
				t.Fatal(err)
			}
			if got.Codec != c.Codec || got.Width != c.Width || got.Patterns != c.Patterns ||
				got.NBits != c.NBits || !bytes.Equal(got.Params, c.Params) ||
				!bytes.Equal(got.Payload, c.Payload) {
				t.Fatalf("golden bytes parse to %+v, want %+v", got, c)
			}
		})
	}
}

// TestGoldenHeaderPrefix pins the fixed header fields byte-for-byte so a
// failure points at the exact field that moved.
func TestGoldenHeaderPrefix(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteV2(&buf, goldenScalar(t)); err != nil {
		t.Fatal(err)
	}
	want := []byte{
		'T', 'C', 'M', 'P', // magic
		2,                            // version
		6,                            // codec-name length
		'g', 'o', 'l', 'o', 'm', 'b', // codec name
		0x00, 0x00, 0x00, 0x0C, // width = 12
		0x00, 0x00, 0x00, 0x04, // patterns = 4
		0x00, 0x00, 0x00, 0x04, // paramLen = 4
		0x00, 0x00, 0x00, 0x04, // params: M = 4
		0x00, 0x00, 0x00, 0x15, // nbits = 21
		0xDE, 0xAD, 0xBE, // payload
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("header layout changed:\n got % x\nwant % x", buf.Bytes(), want)
	}
}
