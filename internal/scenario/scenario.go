// Package scenario generates realistic test-pattern corpora from
// seeded benchmark circuits: stuck-at ATPG sets, robust path-delay
// two-pattern sets, and multichain splits of them. The conformance and
// adversarial suites (and the serve fuzz harness) feed on these instead
// of purely random patterns — ATPG output has the structure the paper's
// codecs exploit (dense don't-cares, correlated blocks), so corruption
// and round-trip checks run against the distribution the system
// actually serves.
//
// Everything is deterministic in (benchmark, seed): the same arguments
// always produce the same patterns, so fuzz seed corpora and golden
// expectations stay stable across runs and worker counts.
package scenario

import (
	"fmt"
	"hash/fnv"

	"repro/internal/atpg"
	"repro/internal/circuit"
	"repro/internal/delay"
	"repro/internal/iscasgen"
	"repro/internal/multichain"
	"repro/internal/pipeline"
	"repro/internal/testset"
)

// Scenario is one generated pattern set with its provenance.
type Scenario struct {
	// Name identifies the source: "<benchmark>/<kind>" (multichain
	// scenarios append "/chainN").
	Name string
	// Kind is "stuck-at", "path-delay", or "multichain".
	Kind string
	Set  *testset.TestSet
}

// Circuit builds the deterministic netlist for a registry benchmark,
// mirroring the flow's generator: input count from the registry row
// (capped at 64), denser fanin-3 netlists for stuck-at, shallow
// fanin-2 ones for path-delay (robust paths need them).
func Circuit(benchmark string, kind iscasgen.Kind, seed int64) (*circuit.Circuit, error) {
	m, err := iscasgen.Find(benchmark, kind)
	if err != nil {
		return nil, err
	}
	inputs := m.Width
	if inputs > 64 {
		inputs = 64
	}
	gates, fanin := 4*inputs, 3
	if kind == iscasgen.PathDelay {
		gates, fanin = 3*inputs, 2
	}
	if gates < 40 {
		gates = 40
	}
	outputs := inputs / 3
	if outputs < 2 {
		outputs = 2
	}
	h := fnv.New64a()
	h.Write([]byte(benchmark))
	return circuit.Random(benchmark, circuit.RandomOptions{
		Inputs: inputs, Gates: gates, Outputs: outputs, MaxFanin: fanin,
		Seed: pipeline.Seed(seed^int64(h.Sum64()), 0),
	})
}

// StuckAt runs PODEM stuck-at ATPG on the benchmark's generated
// circuit and returns the compacted pattern set.
func StuckAt(benchmark string, seed int64) (Scenario, error) {
	c, err := Circuit(benchmark, iscasgen.StuckAt, seed)
	if err != nil {
		return Scenario{}, err
	}
	opt := atpg.DefaultOptions()
	opt.Seed = pipeline.Seed(seed, 1)
	res, err := atpg.Generate(c, opt)
	if err != nil {
		return Scenario{}, err
	}
	return Scenario{Name: benchmark + "/stuck-at", Kind: "stuck-at", Set: res.Tests}, nil
}

// PathDelay generates robust path-delay two-pattern tests (flattened
// v1, v2, v1, v2, ...) for the benchmark's generated circuit.
func PathDelay(benchmark string, seed int64) (Scenario, error) {
	c, err := Circuit(benchmark, iscasgen.PathDelay, seed)
	if err != nil {
		return Scenario{}, err
	}
	opt := delay.DefaultOptions()
	opt.Seed = pipeline.Seed(seed, 1)
	res, err := delay.Generate(c, opt)
	if err != nil {
		return Scenario{}, err
	}
	return Scenario{Name: benchmark + "/path-delay", Kind: "path-delay", Set: res.Tests}, nil
}

// Multichain splits the benchmark's stuck-at set over n interleaved
// scan chains, one scenario per chain — the substring distribution a
// multi-chain decoder sees.
func Multichain(benchmark string, n int, seed int64) ([]Scenario, error) {
	base, err := StuckAt(benchmark, seed)
	if err != nil {
		return nil, err
	}
	chains, err := multichain.Split(base.Set, n, multichain.Interleaved)
	if err != nil {
		return nil, err
	}
	out := make([]Scenario, len(chains))
	for i, ch := range chains {
		out[i] = Scenario{
			Name: fmt.Sprintf("%s/multichain/chain%d", benchmark, i),
			Kind: "multichain",
			Set:  ch,
		}
	}
	return out, nil
}

// Corpus is the default cross-kind corpus: one small stuck-at set, one
// path-delay set, and a 3-chain split — enough shape diversity for
// conformance sweeps without making suites slow. All derived from seed.
func Corpus(seed int64) ([]Scenario, error) {
	out := []Scenario{}
	sa, err := StuckAt("s298", seed)
	if err != nil {
		return nil, err
	}
	out = append(out, sa)
	pd, err := PathDelay("s298", seed)
	if err != nil {
		return nil, err
	}
	out = append(out, pd)
	mc, err := Multichain("s344", 3, seed)
	if err != nil {
		return nil, err
	}
	return append(out, mc...), nil
}
