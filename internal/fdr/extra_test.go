package fdr

import (
	"bytes"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/runlength"
	"repro/internal/testset"
	"repro/internal/tritvec"
)

func TestDecompressTruncatedTail(t *testing.T) {
	w := bitstream.NewWriter()
	w.WriteBit(1) // prefix claims group >= 2, then stream ends
	w.WriteBit(0)
	w.WriteBit(1) // only 1 of 2 tail bits
	if _, err := Decompress(bitstream.FromWriter(w), 100); err == nil {
		t.Fatal("truncated tail accepted")
	}
}

func TestDecompressEmptyStreamImpliesZeros(t *testing.T) {
	dec, err := Decompress(bitstream.NewReader(nil, 0), 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if dec.Get(i) != tritvec.Zero {
			t.Fatal("implied fill must be zero")
		}
	}
}

func TestLongRunSingleCodeword(t *testing.T) {
	// Unlike fixed-counter run-length coding, FDR encodes any run length
	// in one codeword of 2·group(n) bits.
	ts := testset.New(100)
	p := tritvec.New(100)
	for i := 0; i < 99; i++ {
		p.Set(i, tritvec.Zero)
	}
	p.Set(99, tritvec.One)
	ts.Add(p)
	res, err := Compress(ts)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompressedBits != EncodedLen(99) {
		t.Fatalf("run of 99 cost %d bits, want %d", res.CompressedBits, EncodedLen(99))
	}
	dec, err := Decompress(bitstream.FromWriter(res.Stream), 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := runlength.Verify(ts, dec); err != nil {
		t.Fatal(err)
	}
}

func TestAllZeroTestSet(t *testing.T) {
	// No 1s at all: a single trailing run, maximal compression.
	ts := testset.New(64)
	ts.Add(tritvec.New(64)) // all X -> zero fill
	res, err := Compress(ts)
	if err != nil {
		t.Fatal(err)
	}
	if res.RatePercent() < 80 {
		t.Fatalf("all-X rate %.1f%%, expected near-maximal", res.RatePercent())
	}
	dec, err := Decompress(bitstream.FromWriter(res.Stream), 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := runlength.Verify(ts, dec); err != nil {
		t.Fatal(err)
	}
}

// TestDecompressHostileUnaryPrefix pins the hostile-input fix: a payload
// of all 1-bits drives the unary group count past any legal codeword;
// Decompress must reject it with an error on both reader types, never
// panic (the in-memory Reader's ReadBits panics above 64 bits).
func TestDecompressHostileUnaryPrefix(t *testing.T) {
	hostile := bytes.Repeat([]byte{0xFF}, 16) // 128 one-bits
	if _, err := Decompress(bitstream.NewReader(hostile, -1), 1<<20); err == nil {
		t.Fatal("buffered decode accepted a 128-bit unary prefix")
	}
	sr := bitstream.NewStreamReader(bytes.NewReader(hostile), 128)
	if _, err := Decompress(sr, 1<<20); err == nil {
		t.Fatal("streaming decode accepted a 128-bit unary prefix")
	}
}
