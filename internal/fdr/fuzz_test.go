package fdr

import (
	"testing"

	"repro/internal/bitstream"
	"repro/internal/runlength"
	"repro/internal/testset"
)

// FuzzRoundTrip asserts FDR encode -> decode reproduces the zero-filled
// test set exactly over arbitrary inputs.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{0x00}, uint8(1))
	f.Add([]byte{0xff, 0x00, 0x55, 0xaa}, uint8(8))
	f.Add([]byte{0x01, 0x40, 0x90, 0x00, 0x00, 0x06}, uint8(13))
	f.Add([]byte("fuzz seed corpus"), uint8(24))
	f.Fuzz(func(t *testing.T, data []byte, width uint8) {
		ts := testset.FromFuzz(data, int(width%24)+1)
		if ts == nil {
			t.Skip("no patterns")
		}
		res, err := Compress(ts)
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := Decompress(bitstream.FromWriter(res.Stream), ts.TotalBits())
		if err != nil {
			t.Fatal(err)
		}
		want := runlength.ZeroFill(ts)
		if !want.Equal(decoded) {
			t.Fatalf("round trip mismatch (width=%d, %d patterns)",
				ts.Width, ts.NumPatterns())
		}
	})
}
