package fdr

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/testset"
)

// sourceOnly hides the Peeker fast path, forcing the bit-at-a-time
// fallback the new decoder must stay bit-identical with.
type sourceOnly struct{ bitstream.Source }

func TestDecompressPeekerMatchesFallback(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		ts := testset.Random(1+r.Intn(48), 1+r.Intn(24), []float64{0.05, 0.3, 0.9}[trial%3], r)
		res, err := Compress(ts)
		if err != nil {
			t.Fatal(err)
		}
		total := ts.TotalBits()
		fast, err := Decompress(bitstream.FromWriter(res.Stream), total)
		if err != nil {
			t.Fatalf("peeker path: %v", err)
		}
		slow, err := Decompress(sourceOnly{bitstream.FromWriter(res.Stream)}, total)
		if err != nil {
			t.Fatalf("fallback path: %v", err)
		}
		sr := bitstream.NewStreamReader(bytes.NewReader(res.Stream.Bytes()), res.Stream.Len())
		streamed, err := Decompress(sr, total)
		if err != nil {
			t.Fatalf("stream path: %v", err)
		}
		if !fast.Equal(slow) || !fast.Equal(streamed) {
			t.Fatalf("decode paths disagree:\npeek   %s\nfall   %s\nstream %s",
				fast, slow, streamed)
		}
	}
}

func TestDecompressPathsAgreeOnHostileStreams(t *testing.T) {
	// Random garbage: whatever one path does (decode or error), the
	// others must do the same.
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		buf := make([]byte, r.Intn(40))
		r.Read(buf)
		nbit := len(buf)*8 - r.Intn(8)
		if nbit < 0 {
			nbit = 0
		}
		total := r.Intn(400)
		fast, errFast := Decompress(bitstream.NewReader(buf, nbit), total)
		slow, errSlow := Decompress(sourceOnly{bitstream.NewReader(buf, nbit)}, total)
		if (errFast == nil) != (errSlow == nil) {
			t.Fatalf("total=%d: peek err=%v, fallback err=%v", total, errFast, errSlow)
		}
		if errFast == nil && !fast.Equal(slow) {
			t.Fatalf("total=%d: hostile decode disagrees\npeek %s\nfall %s", total, fast, slow)
		}
	}
}

func TestDecompressPrefixCapBothPaths(t *testing.T) {
	// 62 prefix ones would put the codeword past group 62 — hostile
	// input on either decode path, rejected with the same diagnosis.
	w := bitstream.NewWriter()
	for i := 0; i < 70; i++ {
		w.WriteBit(1)
	}
	for _, src := range []bitstream.Source{
		bitstream.FromWriter(w),
		sourceOnly{bitstream.FromWriter(w)},
	} {
		_, err := Decompress(src, 10)
		if err == nil || !strings.Contains(err.Error(), "invalid stream") {
			t.Fatalf("oversized unary prefix accepted: %v", err)
		}
	}
}
