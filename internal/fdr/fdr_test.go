package fdr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitstream"
	"repro/internal/runlength"
	"repro/internal/testset"
)

func TestGroups(t *testing.T) {
	cases := []struct{ n, k int }{
		{0, 1}, {1, 1}, // A1: 0..1
		{2, 2}, {5, 2}, // A2: 2..5
		{6, 3}, {13, 3}, // A3: 6..13
		{14, 4}, {29, 4}, // A4: 14..29
	}
	for _, c := range cases {
		if got := group(c.n); got != c.k {
			t.Errorf("group(%d)=%d want %d", c.n, got, c.k)
		}
		if EncodedLen(c.n) != 2*c.k {
			t.Errorf("EncodedLen(%d)=%d want %d", c.n, EncodedLen(c.n), 2*c.k)
		}
	}
}

func TestGroupBase(t *testing.T) {
	for k := 1; k <= 6; k++ {
		if groupBase(k) != 1<<uint(k)-2 {
			t.Fatalf("groupBase(%d)=%d", k, groupBase(k))
		}
	}
}

func TestCodewordBits(t *testing.T) {
	// Run length 0 (group 1, offset 0): prefix '0' tail '0' -> "00".
	w := bitstream.NewWriter()
	encodeRun(w, 0)
	if w.Len() != 2 || w.Bytes()[0] != 0 {
		t.Fatalf("encode(0): %d bits %08b", w.Len(), w.Bytes()[0])
	}
	// Run length 2 (group 2, offset 0): prefix '10' tail '00' -> "1000".
	w = bitstream.NewWriter()
	encodeRun(w, 2)
	if w.Len() != 4 || w.Bytes()[0]>>4 != 0b1000 {
		t.Fatalf("encode(2): %d bits %08b", w.Len(), w.Bytes()[0])
	}
}

func TestRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for iter := 0; iter < 30; iter++ {
		ts := testset.Random(r.Intn(30)+2, r.Intn(40)+1, r.Float64()*0.6, r)
		res, err := Compress(ts)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decompress(bitstream.FromWriter(res.Stream), ts.TotalBits())
		if err != nil {
			t.Fatal(err)
		}
		if err := runlength.Verify(ts, dec); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
	}
}

func TestSparseBeatsDense(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	sparse := testset.Random(32, 40, 0.03, r)
	dense := testset.Random(32, 40, 0.6, r)
	rs, err := Compress(sparse)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Compress(dense)
	if err != nil {
		t.Fatal(err)
	}
	if rs.RatePercent() <= rd.RatePercent() {
		t.Fatalf("sparse rate %.1f%% not better than dense %.1f%%",
			rs.RatePercent(), rd.RatePercent())
	}
	if rs.RatePercent() <= 0 {
		t.Fatal("sparse data must compress with FDR")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ts := testset.Random(r.Intn(20)+1, r.Intn(30)+1, r.Float64(), r)
		res, err := Compress(ts)
		if err != nil {
			return false
		}
		dec, err := Decompress(bitstream.FromWriter(res.Stream), ts.TotalBits())
		if err != nil {
			return false
		}
		return runlength.Verify(ts, dec) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
