// Package fdr implements frequency-directed run-length (FDR) codes
// (Chandra & Chakrabarty, VTS'01): a variable-to-variable code over 0-run
// lengths. Group A_k covers run lengths [2^k − 2, 2^(k+1) − 3]; its
// codewords consist of a k-bit prefix ((k−1) ones followed by a zero) and
// a k-bit tail, so short runs — the frequent case in test data — get the
// shortest codewords.
package fdr

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/bitstream"
	"repro/internal/runlength"
	"repro/internal/testset"
	"repro/internal/tritvec"
)

// group returns the FDR group k for run length n (k >= 1).
func group(n int) int {
	k := 1
	base := 0 // 2^k - 2 for k=1
	for {
		hi := base + (1 << uint(k)) - 1 // last length in group k
		if n <= hi {
			return k
		}
		base = hi + 1
		k++
	}
}

// groupBase returns the first run length of group k: 2^k - 2.
func groupBase(k int) int { return 1<<uint(k) - 2 }

// EncodedLen returns the FDR codeword length (2k bits) for run length n.
func EncodedLen(n int) int { return 2 * group(n) }

// encodeRun writes the FDR codeword for run length n.
func encodeRun(w *bitstream.Writer, n int) {
	k := group(n)
	for i := 0; i < k-1; i++ {
		w.WriteBit(1)
	}
	w.WriteBit(0)
	w.WriteBits(uint64(n-groupBase(k)), k)
}

// Result reports an encoding.
type Result struct {
	OriginalBits   int
	CompressedBits int
	Stream         *bitstream.Writer
}

// RatePercent returns the paper-style compression rate.
func (r *Result) RatePercent() float64 {
	if r.OriginalBits == 0 {
		return 0
	}
	return 100 * float64(r.OriginalBits-r.CompressedBits) / float64(r.OriginalBits)
}

// Compress FDR-encodes the zero-filled test set string.
func Compress(ts *testset.TestSet) (*Result, error) {
	flat := runlength.ZeroFill(ts)
	runs, trailing := runlength.Runs(flat)
	w := bitstream.NewWriter()
	for _, n := range runs {
		encodeRun(w, n)
	}
	if trailing > 0 {
		encodeRun(w, trailing)
	}
	return &Result{OriginalBits: ts.TotalBits(), CompressedBits: w.Len(), Stream: w}, nil
}

// Decompress reconstructs totalBits bits from any bit source — the
// in-memory reader or the io.Reader-fed streaming one. End of stream at a
// codeword boundary means the remaining bits are implied zeros; end of
// stream inside a codeword is an error wrapping bitstream.ErrEOS.
func Decompress(r bitstream.Source, totalBits int) (tritvec.Vector, error) {
	if totalBits < 0 {
		return tritvec.Vector{}, fmt.Errorf("fdr: negative output size %d", totalBits)
	}
	out := tritvec.New(totalBits)
	pk, _ := r.(bitstream.Peeker)
	pos := 0
	for pos < totalBits {
		k, atEnd, err := readGroup(r, pk)
		if err != nil {
			return tritvec.Vector{}, err
		}
		if atEnd {
			out.FillZeros(pos, totalBits-pos)
			break
		}
		tail, err := r.ReadBits(k)
		if err != nil {
			return tritvec.Vector{}, fmt.Errorf("fdr: truncated tail: %w", err)
		}
		// With k capped at 62, groupBase(k) + tail < 2^63, so the sum
		// cannot wrap int — the group cap is this decoder's overflow
		// guard, the analogue of golomb's q*m+rem check.
		n := groupBase(k) + int(tail)
		if n > totalBits-pos {
			n = totalBits - pos
		}
		out.FillZeros(pos, n)
		pos += n
		if pos < totalBits {
			out.Set(pos, tritvec.One)
			pos++
		}
	}
	return out, nil
}

// readGroup reads the FDR group prefix — (k−1) ones closed by a zero —
// returning k. When the source is a Peeker it scans whole peek windows
// with LeadingZeros64 instead of a bit at a time; the fallback keeps
// third-party Sources working. atEnd reports end of stream before any
// bit of the codeword — the implied-zeros case for the caller.
//
// Group k covers run lengths up to 2^(k+1)-3, so k=62 already exceeds
// any run an int-indexed test set can contain; a longer unary prefix is
// hostile input, not a codeword (and would overflow the in-memory
// reader's 64-bit ReadBits).
func readGroup(r bitstream.Source, pk bitstream.Peeker) (k int, atEnd bool, err error) {
	k = 1
	if pk == nil {
		bit, err := r.ReadBit()
		if err != nil {
			if errors.Is(err, bitstream.ErrEOS) {
				return 0, true, nil
			}
			return 0, false, err
		}
		for bit == 1 {
			k++
			if k > 62 {
				return 0, false, fmt.Errorf("fdr: unary prefix exceeds group %d: invalid stream", k)
			}
			if bit, err = r.ReadBit(); err != nil {
				return 0, false, fmt.Errorf("fdr: truncated prefix: %w", err)
			}
		}
		return k, false, nil
	}
	for {
		v, avail := pk.PeekBits(bitstream.PeekMax)
		if avail == 0 {
			// Exhausted; ReadBit surfaces the underlying error (true EOS
			// or a sticky reader error).
			_, err := r.ReadBit()
			if k == 1 && errors.Is(err, bitstream.ErrEOS) {
				return 0, true, nil
			}
			if k == 1 {
				return 0, false, err
			}
			return 0, false, fmt.Errorf("fdr: truncated prefix: %w", err)
		}
		// Leading 1s of the window = leading 0s of its complement once
		// the window is left-aligned in the 64-bit word.
		lead := bits.LeadingZeros64(^(v << uint(64-avail)))
		if k+lead > 62 {
			return 0, false, fmt.Errorf("fdr: unary prefix exceeds group %d: invalid stream", 63)
		}
		if lead < avail {
			if err := pk.Skip(lead + 1); err != nil {
				return 0, false, err
			}
			return k + lead, false, nil
		}
		k += avail
		if err := pk.Skip(avail); err != nil {
			return 0, false, err
		}
	}
}
