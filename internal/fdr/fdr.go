// Package fdr implements frequency-directed run-length (FDR) codes
// (Chandra & Chakrabarty, VTS'01): a variable-to-variable code over 0-run
// lengths. Group A_k covers run lengths [2^k − 2, 2^(k+1) − 3]; its
// codewords consist of a k-bit prefix ((k−1) ones followed by a zero) and
// a k-bit tail, so short runs — the frequent case in test data — get the
// shortest codewords.
package fdr

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/runlength"
	"repro/internal/testset"
	"repro/internal/tritvec"
)

// group returns the FDR group k for run length n (k >= 1).
func group(n int) int {
	k := 1
	base := 0 // 2^k - 2 for k=1
	for {
		hi := base + (1 << uint(k)) - 1 // last length in group k
		if n <= hi {
			return k
		}
		base = hi + 1
		k++
	}
}

// groupBase returns the first run length of group k: 2^k - 2.
func groupBase(k int) int { return 1<<uint(k) - 2 }

// EncodedLen returns the FDR codeword length (2k bits) for run length n.
func EncodedLen(n int) int { return 2 * group(n) }

// encodeRun writes the FDR codeword for run length n.
func encodeRun(w *bitstream.Writer, n int) {
	k := group(n)
	for i := 0; i < k-1; i++ {
		w.WriteBit(1)
	}
	w.WriteBit(0)
	w.WriteBits(uint64(n-groupBase(k)), k)
}

// Result reports an encoding.
type Result struct {
	OriginalBits   int
	CompressedBits int
	Stream         *bitstream.Writer
}

// RatePercent returns the paper-style compression rate.
func (r *Result) RatePercent() float64 {
	if r.OriginalBits == 0 {
		return 0
	}
	return 100 * float64(r.OriginalBits-r.CompressedBits) / float64(r.OriginalBits)
}

// Compress FDR-encodes the zero-filled test set string.
func Compress(ts *testset.TestSet) (*Result, error) {
	flat := runlength.ZeroFill(ts)
	runs, trailing := runlength.Runs(flat)
	w := bitstream.NewWriter()
	for _, n := range runs {
		encodeRun(w, n)
	}
	if trailing > 0 {
		encodeRun(w, trailing)
	}
	return &Result{OriginalBits: ts.TotalBits(), CompressedBits: w.Len(), Stream: w}, nil
}

// Decompress reconstructs totalBits bits.
func Decompress(r *bitstream.Reader, totalBits int) (tritvec.Vector, error) {
	out := tritvec.New(totalBits)
	pos := 0
	for pos < totalBits {
		if r.Remaining() == 0 {
			for ; pos < totalBits; pos++ {
				out.Set(pos, tritvec.Zero)
			}
			break
		}
		k := 1
		for {
			bit, err := r.ReadBit()
			if err != nil {
				return tritvec.Vector{}, err
			}
			if bit == 0 {
				break
			}
			k++
		}
		tail, err := r.ReadBits(k)
		if err != nil {
			return tritvec.Vector{}, fmt.Errorf("fdr: truncated tail: %v", err)
		}
		n := groupBase(k) + int(tail)
		for i := 0; i < n && pos < totalBits; i++ {
			out.Set(pos, tritvec.Zero)
			pos++
		}
		if pos < totalBits {
			out.Set(pos, tritvec.One)
			pos++
		}
	}
	return out, nil
}
