// Package bitstream provides MSB-first bit-level writers and readers for
// compressed test data. Codewords are emitted most-significant-bit first so
// that a prefix code can be decoded by walking bits in stream order.
package bitstream

import (
	"errors"
	"fmt"
)

// ErrEOS is returned when reading past the end of the stream.
var ErrEOS = errors.New("bitstream: end of stream")

// Writer accumulates bits MSB-first into a byte buffer.
type Writer struct {
	buf  []byte
	nbit int // total bits written
}

// NewWriter returns an empty Writer.
func NewWriter() *Writer { return &Writer{} }

// WriteBit appends a single bit (0 or 1).
func (w *Writer) WriteBit(b uint) {
	if w.nbit%8 == 0 {
		w.buf = append(w.buf, 0)
	}
	if b != 0 {
		w.buf[w.nbit/8] |= 0x80 >> uint(w.nbit%8)
	}
	w.nbit++
}

// WriteBits appends the low n bits of v, most significant first.
func (w *Writer) WriteBits(v uint64, n int) {
	if n < 0 || n > 64 {
		panic(fmt.Sprintf("bitstream: WriteBits n=%d", n))
	}
	for i := n - 1; i >= 0; i-- {
		w.WriteBit(uint(v >> uint(i) & 1))
	}
}

// Len returns the number of bits written.
func (w *Writer) Len() int { return w.nbit }

// Bytes returns the accumulated buffer; the final byte is zero-padded.
func (w *Writer) Bytes() []byte { return w.buf }

// Reset truncates the writer to empty.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.nbit = 0
}

// Reader consumes bits MSB-first from a byte buffer.
type Reader struct {
	buf  []byte
	nbit int // total valid bits
	pos  int // next bit to read
}

// NewReader returns a Reader over buf exposing nbit valid bits. If nbit is
// negative, all of buf (len*8 bits) is exposed.
func NewReader(buf []byte, nbit int) *Reader {
	if nbit < 0 {
		nbit = len(buf) * 8
	}
	if nbit > len(buf)*8 {
		panic("bitstream: nbit exceeds buffer")
	}
	return &Reader{buf: buf, nbit: nbit}
}

// FromWriter returns a Reader over the bits accumulated in w.
func FromWriter(w *Writer) *Reader { return NewReader(w.Bytes(), w.Len()) }

// ReadBit returns the next bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.pos >= r.nbit {
		return 0, ErrEOS
	}
	b := uint(r.buf[r.pos/8] >> uint(7-r.pos%8) & 1)
	r.pos++
	return b, nil
}

// ReadBits reads n bits MSB-first into the low bits of the result.
func (r *Reader) ReadBits(n int) (uint64, error) {
	if n < 0 || n > 64 {
		panic(fmt.Sprintf("bitstream: ReadBits n=%d", n))
	}
	var v uint64
	for i := 0; i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return r.nbit - r.pos }

// Pos returns the number of bits consumed so far.
func (r *Reader) Pos() int { return r.pos }
