// Package bitstream provides MSB-first bit-level writers and readers for
// compressed test data. Codewords are emitted most-significant-bit first so
// that a prefix code can be decoded by walking bits in stream order.
//
// The hot paths are word-at-a-time: WriteBits splits its 64-bit argument
// into whole output bytes instead of looping per bit, ReadBits gathers
// whole bytes into a 64-bit word, and StreamReader keeps a 64-bit
// accumulator refilled from an io.Reader so decoding never needs the full
// payload in memory.
package bitstream

import (
	"errors"
	"fmt"
	"io"
)

// ErrEOS is returned when reading past the end of the stream. Errors from
// refilling readers wrap it; test with errors.Is(err, ErrEOS).
var ErrEOS = errors.New("bitstream: end of stream")

// ErrBitCount is returned (wrapped) when a bit count lies outside [0,64],
// or when a reader is constructed over a buffer too small for its declared
// bit count. Both the in-memory Reader and the StreamReader return it —
// no read path in this package panics, so counts derived from hostile
// container headers surface as checked errors. The only remaining panic
// is Writer.WriteBits, whose bit counts are always produced by encoders,
// never parsed from input (use TryWriteBits for untrusted counts).
var ErrBitCount = errors.New("bitstream: bit count out of range [0,64]")

// Source is the bit-level input every decoder in the repo consumes: the
// in-memory Reader and the io.Reader-fed StreamReader both implement it,
// so the same decode code serves the buffered and the streaming paths.
type Source interface {
	// ReadBit returns the next bit. At end of stream the error satisfies
	// errors.Is(err, ErrEOS).
	ReadBit() (uint, error)
	// ReadBits reads n bits MSB-first into the low bits of the result.
	ReadBits(n int) (uint64, error)
}

// Peeker is the optional fast-path extension of Source: a window of
// upcoming bits without consuming them, plus a bulk Skip. Decoders
// upgrade a Source with a type assertion and fall back to the
// bit-at-a-time Source methods when it is absent, so third-party
// Sources keep working.
//
// The contract both implementations honor: PeekBits(n) with n in
// [0,PeekMax] returns avail = min(n, bits remaining) and the next avail
// bits MSB-first in the low avail bits of v. avail < n therefore means
// fewer than n bits remain in the whole stream — there is no transient
// short peek — which lets scanners treat a short window as
// end-of-stream. Skip consumes bits previously seen via PeekBits.
type Peeker interface {
	// PeekBits returns the next min(n, PeekMax, remaining) bits without
	// consuming them, MSB-first in the low bits of v.
	PeekBits(n int) (v uint64, avail int)
	// Skip consumes n bits. Skipping past the end of the stream returns
	// an error wrapping ErrEOS (the stream position is then exhausted).
	Skip(n int) error
}

// PeekMax is the largest window PeekBits guarantees: the StreamReader's
// accumulator refills to at least 57 valid bits, so any peek up to 56
// bits is short only at true end of stream.
const PeekMax = 56

// Writer accumulates bits MSB-first into a byte buffer.
type Writer struct {
	buf  []byte
	nbit int // total bits written
}

// NewWriter returns an empty Writer.
func NewWriter() *Writer { return &Writer{} }

// WriteBit appends a single bit (0 or 1).
func (w *Writer) WriteBit(b uint) {
	if w.nbit&7 == 0 {
		w.buf = append(w.buf, 0)
	}
	if b != 0 {
		w.buf[w.nbit>>3] |= 0x80 >> uint(w.nbit&7)
	}
	w.nbit++
}

// WriteBits appends the low n bits of v, most significant first. It
// panics if n is outside [0,64]; use TryWriteBits when n comes from
// untrusted input.
func (w *Writer) WriteBits(v uint64, n int) {
	if err := w.TryWriteBits(v, n); err != nil {
		panic(fmt.Sprintf("bitstream: WriteBits n=%d", n))
	}
}

// TryWriteBits appends the low n bits of v, most significant first,
// returning an error wrapping ErrBitCount when n is outside [0,64]. This
// is the checked entry point for streaming code paths where n may derive
// from hostile input.
func (w *Writer) TryWriteBits(v uint64, n int) error {
	if n < 0 || n > 64 {
		return fmt.Errorf("bitstream: WriteBits n=%d: %w", n, ErrBitCount)
	}
	if n == 0 {
		return nil
	}
	if n < 64 {
		v &= 1<<uint(n) - 1
	}
	// Fill the free low bits of the current partial byte.
	if free := len(w.buf)*8 - w.nbit; free > 0 {
		if n <= free {
			w.buf[len(w.buf)-1] |= byte(v << uint(free-n))
			w.nbit += n
			return nil
		}
		w.buf[len(w.buf)-1] |= byte(v >> uint(n-free))
		w.nbit += free
		n -= free
	}
	// Append whole bytes, most significant first.
	for n >= 8 {
		n -= 8
		w.buf = append(w.buf, byte(v>>uint(n)))
		w.nbit += 8
	}
	if n > 0 {
		w.buf = append(w.buf, byte(v<<uint(8-n)))
		w.nbit += n
	}
	return nil
}

// Len returns the number of bits written.
func (w *Writer) Len() int { return w.nbit }

// Bytes returns the accumulated buffer; the final byte is zero-padded.
func (w *Writer) Bytes() []byte { return w.buf }

// Reset truncates the writer to empty.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.nbit = 0
}

// Reader consumes bits MSB-first from a byte buffer. Like the
// StreamReader, it never panics on hostile input: a declared bit count
// exceeding the buffer, or a read past the end, surfaces as an error
// wrapping ErrBitCount / ErrEOS.
type Reader struct {
	buf  []byte
	nbit int   // total valid bits
	pos  int   // next bit to read
	err  error // sticky construction error (declared bits exceed buffer)
}

// NewReader returns a Reader over buf exposing nbit valid bits. If nbit is
// negative, all of buf (len*8 bits) is exposed. If nbit exceeds the
// buffer — a corrupt container header declaring more payload bits than it
// shipped — the reader is still returned, but every read fails with an
// error wrapping ErrBitCount, so decode paths report corruption instead
// of panicking.
func NewReader(buf []byte, nbit int) *Reader {
	if nbit < 0 {
		nbit = len(buf) * 8
	}
	r := &Reader{buf: buf, nbit: nbit}
	if nbit > len(buf)*8 {
		r.nbit = 0
		r.err = fmt.Errorf("bitstream: declared %d bits but buffer holds only %d: %w",
			nbit, len(buf)*8, ErrBitCount)
	}
	return r
}

// FromWriter returns a Reader over the bits accumulated in w.
func FromWriter(w *Writer) *Reader { return NewReader(w.Bytes(), w.Len()) }

// Err returns the sticky construction error, if any.
func (r *Reader) Err() error { return r.err }

// ReadBit returns the next bit. At end of stream the error is ErrEOS; a
// reader constructed with an oversized bit count returns its sticky
// construction error instead.
func (r *Reader) ReadBit() (uint, error) {
	if r.pos >= r.nbit {
		if r.err != nil {
			return 0, r.err
		}
		return 0, ErrEOS
	}
	b := uint(r.buf[r.pos>>3] >> uint(7-r.pos&7) & 1)
	r.pos++
	return b, nil
}

// ReadBits reads n bits MSB-first into the low bits of the result. It
// gathers whole bytes rather than looping per bit. A count outside
// [0,64] returns an error wrapping ErrBitCount (the count may derive from
// a hostile container parameter); reading past the end returns ErrEOS.
func (r *Reader) ReadBits(n int) (uint64, error) {
	if n < 0 || n > 64 {
		return 0, fmt.Errorf("bitstream: ReadBits n=%d: %w", n, ErrBitCount)
	}
	if r.pos+n > r.nbit {
		if r.err != nil {
			return 0, r.err
		}
		return 0, ErrEOS
	}
	if n == 0 {
		return 0, nil
	}
	p := r.pos
	r.pos += n
	return r.gather(p, n), nil
}

// gather reads n in-bounds bits starting at bit position p without
// advancing; callers have already checked p+n <= nbit and 0 < n <= 64.
func (r *Reader) gather(p, n int) uint64 {
	var v uint64
	// Head: finish the current partial byte.
	if off := p & 7; off != 0 {
		b := uint64(r.buf[p>>3]) & (0xFF >> uint(off))
		take := 8 - off
		if n <= take {
			return b >> uint(take-n)
		}
		v = b
		n -= take
		p += take
	}
	// Body: whole bytes.
	for n >= 8 {
		v = v<<8 | uint64(r.buf[p>>3])
		p += 8
		n -= 8
	}
	// Tail: high bits of the next byte.
	if n > 0 {
		v = v<<uint(n) | uint64(r.buf[p>>3])>>uint(8-n)
	}
	return v
}

// PeekBits returns the next min(n, PeekMax, Remaining()) bits MSB-first
// in the low bits of v without consuming them. A reader constructed
// with an oversized bit count exposes zero bits, so its sticky error
// still surfaces through the Source methods the caller falls back to.
func (r *Reader) PeekBits(n int) (v uint64, avail int) {
	if n > PeekMax {
		n = PeekMax
	}
	if rem := r.nbit - r.pos; n > rem {
		n = rem
	}
	if n <= 0 {
		return 0, 0
	}
	return r.gather(r.pos, n), n
}

// Skip consumes n bits without decoding them.
func (r *Reader) Skip(n int) error {
	if n < 0 {
		return fmt.Errorf("bitstream: Skip n=%d: %w", n, ErrBitCount)
	}
	if r.pos+n > r.nbit {
		r.pos = r.nbit
		if r.err != nil {
			return r.err
		}
		return ErrEOS
	}
	r.pos += n
	return nil
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return r.nbit - r.pos }

// Pos returns the number of bits consumed so far.
func (r *Reader) Pos() int { return r.pos }

// StreamReader consumes bits MSB-first from an io.Reader through a 64-bit
// accumulator, refilling in bounded chunks so decoding never needs the
// full payload in memory. A non-negative limit bounds the number of bits
// exposed (the payload's bit count, excluding the final byte's padding);
// a negative limit exposes everything until EOF.
//
// All end-of-stream and validation errors wrap ErrEOS / ErrBitCount, so
// callers test with errors.Is; StreamReader never panics on hostile
// input.
type StreamReader struct {
	src   io.Reader
	limit int // total bits exposed, -1 = until EOF
	pos   int // bits consumed
	acc   uint64
	nacc  int // valid low bits of acc
	buf   []byte
	pend  []byte // unread refill bytes
	err   error  // sticky source error (io.EOF included)
}

// streamChunk is the refill granularity: small enough that a hostile
// length field costs nothing, large enough to amortize Read calls.
const streamChunk = 4 << 10

// NewStreamReader returns a StreamReader over src exposing nbits bits
// (negative = until EOF).
func NewStreamReader(src io.Reader, nbits int) *StreamReader {
	if nbits < 0 {
		nbits = -1
	}
	return &StreamReader{src: src, limit: nbits, buf: make([]byte, streamChunk)}
}

// refill moves source bytes into the accumulator until it holds more
// than 56 bits or the source is exhausted. A transient (0, nil) read is
// retried, as io.ReadAtLeast does — only an error (including io.EOF)
// ends the stream.
func (r *StreamReader) refill() {
	for r.nacc <= 56 {
		for len(r.pend) == 0 {
			if r.err != nil {
				return
			}
			n, err := r.src.Read(r.buf)
			if n > 0 {
				r.pend = r.buf[:n]
			}
			if err != nil {
				r.err = err
			}
		}
		r.acc = r.acc<<8 | uint64(r.pend[0])
		r.pend = r.pend[1:]
		r.nacc += 8
	}
}

// eosError reports why n more bits are unavailable: a true source error,
// or end of stream (always wrapping ErrEOS).
func (r *StreamReader) eosError(n int) error {
	if r.err != nil && r.err != io.EOF {
		return fmt.Errorf("bitstream: read %d bits at offset %d: %w", n, r.pos, r.err)
	}
	return fmt.Errorf("bitstream: need %d bits at offset %d: %w", n, r.pos, ErrEOS)
}

// ReadBit returns the next bit.
func (r *StreamReader) ReadBit() (uint, error) {
	if r.limit >= 0 && r.pos >= r.limit {
		return 0, r.eosError(1)
	}
	if r.nacc == 0 {
		r.refill()
		if r.nacc == 0 {
			return 0, r.eosError(1)
		}
	}
	r.nacc--
	r.pos++
	return uint(r.acc >> uint(r.nacc) & 1), nil
}

// ReadBits reads n bits MSB-first into the low bits of the result. Unlike
// the in-memory Reader it returns an error wrapping ErrBitCount (rather
// than panicking) when n is outside [0,64].
func (r *StreamReader) ReadBits(n int) (uint64, error) {
	if n < 0 || n > 64 {
		return 0, fmt.Errorf("bitstream: ReadBits n=%d: %w", n, ErrBitCount)
	}
	if n == 0 {
		return 0, nil
	}
	if r.limit >= 0 && r.pos+n > r.limit {
		return 0, r.eosError(n)
	}
	if n > 56 {
		// The accumulator refills to at least 57 bits, so split once.
		hi, err := r.ReadBits(n - 32)
		if err != nil {
			return 0, err
		}
		lo, err := r.ReadBits(32)
		if err != nil {
			return 0, err
		}
		return hi<<32 | lo, nil
	}
	if r.nacc < n {
		r.refill()
		if r.nacc < n {
			return 0, r.eosError(n)
		}
	}
	r.nacc -= n
	r.pos += n
	return r.acc >> uint(r.nacc) & (1<<uint(n) - 1), nil
}

// PeekBits returns the next min(n, PeekMax, remaining) bits MSB-first
// in the low bits of v without consuming them. The accumulator refills
// to more than PeekMax bits whenever the source can still deliver, so a
// short window means the stream itself is ending — the property unary
// run scanners rely on.
func (r *StreamReader) PeekBits(n int) (v uint64, avail int) {
	if n > PeekMax {
		n = PeekMax
	}
	if r.limit >= 0 {
		if rem := r.limit - r.pos; n > rem {
			n = rem
		}
	}
	if n <= 0 {
		return 0, 0
	}
	if r.nacc < n {
		r.refill()
		if r.nacc < n {
			n = r.nacc
		}
	}
	if n <= 0 {
		return 0, 0
	}
	return r.acc >> uint(r.nacc-n) & (1<<uint(n) - 1), n
}

// Skip consumes n bits without decoding them. Only bits already seen
// through PeekBits are guaranteed skippable; skipping past the end
// returns an error wrapping ErrEOS.
func (r *StreamReader) Skip(n int) error {
	if n < 0 {
		return fmt.Errorf("bitstream: Skip n=%d: %w", n, ErrBitCount)
	}
	for n > 0 {
		if r.limit >= 0 && r.pos >= r.limit {
			return r.eosError(n)
		}
		if r.nacc == 0 {
			r.refill()
			if r.nacc == 0 {
				return r.eosError(n)
			}
		}
		take := n
		if take > r.nacc {
			take = r.nacc
		}
		if r.limit >= 0 {
			if rem := r.limit - r.pos; take > rem {
				take = rem
			}
		}
		r.nacc -= take
		r.pos += take
		n -= take
	}
	return nil
}

// Pos returns the number of bits consumed so far.
func (r *StreamReader) Pos() int { return r.pos }

var (
	_ Source = (*Reader)(nil)
	_ Source = (*StreamReader)(nil)
	_ Peeker = (*Reader)(nil)
	_ Peeker = (*StreamReader)(nil)
)
