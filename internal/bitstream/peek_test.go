package bitstream

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/iotest"
)

// randStream writes nbit random bits and returns the writer plus the
// bits as a slice for reference checking.
func randStream(nbit int, r *rand.Rand) (*Writer, []uint) {
	w := NewWriter()
	bitsOut := make([]uint, nbit)
	for i := range bitsOut {
		b := uint(r.Intn(2))
		bitsOut[i] = b
		w.WriteBit(b)
	}
	return w, bitsOut
}

// refWindow gathers bits [pos, pos+n) of ref MSB-first.
func refWindow(ref []uint, pos, n int) uint64 {
	var v uint64
	for i := 0; i < n; i++ {
		v = v<<1 | uint64(ref[pos+i])
	}
	return v
}

// checkPeeker drives p through a random interleave of peeks, skips and
// reads and verifies every result against the reference bit slice. The
// Peeker contract under test: avail == min(n, PeekMax, remaining), the
// window matches the stream, and peeking never consumes.
func checkPeeker(t *testing.T, p Peeker, src Source, ref []uint, r *rand.Rand) {
	t.Helper()
	pos := 0
	for pos < len(ref) {
		n := r.Intn(PeekMax + 2) // occasionally over PeekMax
		want := n
		if want > PeekMax {
			want = PeekMax
		}
		if rem := len(ref) - pos; want > rem {
			want = rem
		}
		v, avail := p.PeekBits(n)
		if avail != want {
			t.Fatalf("pos=%d PeekBits(%d): avail=%d, want %d", pos, n, avail, want)
		}
		if wantV := refWindow(ref, pos, avail); v != wantV {
			t.Fatalf("pos=%d PeekBits(%d): v=%#x, want %#x", pos, n, v, wantV)
		}
		// Peek again with a different width: must still not have consumed.
		if v2, a2 := p.PeekBits(avail); a2 != avail || v2 != v {
			t.Fatalf("pos=%d second peek moved: (%#x,%d) vs (%#x,%d)", pos, v2, a2, v, avail)
		}
		if avail == 0 {
			continue // n == 0 draw; bits remain, retry with a wider window
		}
		// Consume some of the window, alternating Skip and ReadBits.
		take := 1 + r.Intn(avail)
		if r.Intn(2) == 0 {
			if err := p.Skip(take); err != nil {
				t.Fatalf("pos=%d Skip(%d): %v", pos, take, err)
			}
		} else {
			got, err := src.ReadBits(take)
			if err != nil {
				t.Fatalf("pos=%d ReadBits(%d): %v", pos, take, err)
			}
			if want := refWindow(ref, pos, take); got != want {
				t.Fatalf("pos=%d ReadBits(%d)=%#x, want %#x", pos, take, got, want)
			}
		}
		pos += take
	}
	// Exhausted: peeks return empty, skips report end of stream.
	if v, avail := p.PeekBits(8); avail != 0 || v != 0 {
		t.Fatalf("peek at EOS: (%#x,%d), want (0,0)", v, avail)
	}
	if err := p.Skip(1); !errors.Is(err, ErrEOS) {
		t.Fatalf("Skip past EOS: %v, want ErrEOS", err)
	}
	if err := p.Skip(-1); !errors.Is(err, ErrBitCount) {
		t.Fatalf("Skip(-1): %v, want ErrBitCount", err)
	}
}

func TestReaderPeekSkipProperty(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		nbit := r.Intn(500)
		w, ref := randStream(nbit, r)
		rd := FromWriter(w)
		checkPeeker(t, rd, rd, ref, r)
	}
}

func TestStreamReaderPeekSkipProperty(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for trial := 0; trial < 200; trial++ {
		nbit := r.Intn(500)
		w, ref := randStream(nbit, r)
		var src io.Reader = bytes.NewReader(w.Bytes())
		if trial%3 == 0 {
			// Starved source: refills arrive one byte at a time, so the
			// "short peek means end of stream" contract is exercised
			// against transient underfills.
			src = iotest.OneByteReader(src)
		}
		sr := NewStreamReader(src, nbit)
		checkPeeker(t, sr, sr, ref, r)
	}
}

func TestStreamReaderPeekUnlimited(t *testing.T) {
	// limit < 0 exposes bits until EOF; the peek window must clip to the
	// true payload, not beyond it.
	r := rand.New(rand.NewSource(23))
	w, ref := randStream(24, r)
	sr := NewStreamReader(bytes.NewReader(w.Bytes()), -1)
	v, avail := sr.PeekBits(56)
	if avail != 24 {
		t.Fatalf("avail=%d, want 24", avail)
	}
	if want := refWindow(ref, 0, 24); v != want {
		t.Fatalf("v=%#x, want %#x", v, want)
	}
	if err := sr.Skip(24); err != nil {
		t.Fatal(err)
	}
	if _, avail := sr.PeekBits(1); avail != 0 {
		t.Fatalf("avail=%d after exhausting payload, want 0", avail)
	}
}

func TestReaderPeekOversizedDeclaredCount(t *testing.T) {
	// A hostile container header declaring more bits than the buffer
	// holds: the reader exposes zero bits, so peeks are empty and the
	// sticky ErrBitCount still surfaces through Skip.
	rd := NewReader([]byte{0xFF}, 64)
	if _, avail := rd.PeekBits(8); avail != 0 {
		t.Fatalf("avail=%d, want 0", avail)
	}
	if err := rd.Skip(1); !errors.Is(err, ErrBitCount) {
		t.Fatalf("Skip: %v, want ErrBitCount", err)
	}
}

func TestPeekDoesNotExceedLimitMidAccumulator(t *testing.T) {
	// Eight bytes are buffered but only 3 bits are in the payload: the
	// window must clip at the limit even though the accumulator holds
	// more.
	sr := NewStreamReader(bytes.NewReader([]byte{0b10100000, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}), 3)
	v, avail := sr.PeekBits(56)
	if avail != 3 || v != 0b101 {
		t.Fatalf("got (%#b,%d), want (0b101,3)", v, avail)
	}
	if err := sr.Skip(3); err != nil {
		t.Fatal(err)
	}
	if err := sr.Skip(1); !errors.Is(err, ErrEOS) {
		t.Fatalf("Skip past limit: %v, want ErrEOS", err)
	}
}
