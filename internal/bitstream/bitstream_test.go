package bitstream

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadBits(t *testing.T) {
	w := NewWriter()
	w.WriteBit(1)
	w.WriteBit(0)
	w.WriteBits(0b1101, 4)
	if w.Len() != 6 {
		t.Fatalf("Len=%d want 6", w.Len())
	}
	r := FromWriter(w)
	got, err := r.ReadBits(6)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0b101101 {
		t.Fatalf("got %06b want 101101", got)
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining=%d", r.Remaining())
	}
	if _, err := r.ReadBit(); err != ErrEOS {
		t.Fatalf("expected ErrEOS, got %v", err)
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0xFF, 8)
	w.Reset()
	if w.Len() != 0 {
		t.Fatal("reset did not clear length")
	}
	w.WriteBit(0)
	w.WriteBit(1)
	r := FromWriter(w)
	v, _ := r.ReadBits(2)
	if v != 1 {
		t.Fatalf("after reset got %b", v)
	}
}

func TestMSBFirstByteLayout(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0b10110011, 8)
	if w.Bytes()[0] != 0b10110011 {
		t.Fatalf("byte layout %08b", w.Bytes()[0])
	}
}

func TestReaderPartialByte(t *testing.T) {
	r := NewReader([]byte{0b10100000}, 3)
	v, err := r.ReadBits(3)
	if err != nil || v != 0b101 {
		t.Fatalf("got %b err %v", v, err)
	}
	if _, err := r.ReadBit(); err != ErrEOS {
		t.Fatal("expected EOS after 3 bits")
	}
}

func TestReaderNegativeNBit(t *testing.T) {
	r := NewReader([]byte{0xFF, 0x00}, -1)
	if r.Remaining() != 16 {
		t.Fatalf("Remaining=%d want 16", r.Remaining())
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { NewWriter().WriteBits(0, 65) })
	mustPanic(func() { NewWriter().WriteBits(0, -1) })
}

// TestReaderCheckedErrors pins the checked read API: the conditions that
// used to panic (a declared bit count exceeding the buffer, an absurd
// ReadBits count) now surface as errors wrapping ErrBitCount, so decode
// paths fed hostile containers report corruption instead of crashing.
func TestReaderCheckedErrors(t *testing.T) {
	r := NewReader(nil, 1) // declared 1 bit over an empty buffer
	if r.Err() == nil || !errors.Is(r.Err(), ErrBitCount) {
		t.Fatalf("Err()=%v, want ErrBitCount", r.Err())
	}
	if _, err := r.ReadBit(); !errors.Is(err, ErrBitCount) {
		t.Fatalf("ReadBit err=%v, want ErrBitCount", err)
	}
	if _, err := r.ReadBits(1); !errors.Is(err, ErrBitCount) {
		t.Fatalf("ReadBits err=%v, want ErrBitCount", err)
	}
	if _, err := NewReader(nil, 0).ReadBits(65); !errors.Is(err, ErrBitCount) {
		t.Fatal("ReadBits(65) must wrap ErrBitCount")
	}
	if _, err := NewReader(nil, 0).ReadBits(-1); !errors.Is(err, ErrBitCount) {
		t.Fatal("ReadBits(-1) must wrap ErrBitCount")
	}
	// A consistent reader still ends with plain ErrEOS.
	ok := NewReader([]byte{0xAA}, 8)
	if _, err := ok.ReadBits(8); err != nil {
		t.Fatalf("consistent read: %v", err)
	}
	if _, err := ok.ReadBit(); !errors.Is(err, ErrEOS) {
		t.Fatalf("want ErrEOS at end, got %v", err)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(50) + 1
		type chunk struct {
			v    uint64
			bits int
		}
		chunks := make([]chunk, n)
		w := NewWriter()
		for i := range chunks {
			bits := r.Intn(64) + 1
			v := r.Uint64()
			if bits < 64 {
				v &= (1 << uint(bits)) - 1
			}
			chunks[i] = chunk{v, bits}
			w.WriteBits(v, bits)
		}
		rd := FromWriter(w)
		for _, c := range chunks {
			got, err := rd.ReadBits(c.bits)
			if err != nil || got != c.v {
				return false
			}
		}
		return rd.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPosTracking(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0b1010, 4)
	r := FromWriter(w)
	if r.Pos() != 0 {
		t.Fatal("initial pos")
	}
	_, _ = r.ReadBits(3)
	if r.Pos() != 3 || r.Remaining() != 1 {
		t.Fatalf("pos=%d rem=%d", r.Pos(), r.Remaining())
	}
}
