package bitstream

// Property-based tests for the word-at-a-time fast paths. The reference
// implementations below are the original bit-at-a-time loops, kept here
// verbatim: every random (v,n) sequence must produce byte-identical
// buffers through both writers and identical values through all three
// readers (in-memory word-wise, reference bit-wise, io.Reader-fed
// streaming).

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
)

// refWriter is the pre-word-at-a-time Writer: one append per bit.
type refWriter struct {
	buf  []byte
	nbit int
}

func (w *refWriter) writeBit(b uint) {
	if w.nbit%8 == 0 {
		w.buf = append(w.buf, 0)
	}
	if b != 0 {
		w.buf[w.nbit/8] |= 0x80 >> uint(w.nbit%8)
	}
	w.nbit++
}

func (w *refWriter) writeBits(v uint64, n int) {
	for i := n - 1; i >= 0; i-- {
		w.writeBit(uint(v >> uint(i) & 1))
	}
}

// refRead is the pre-word-at-a-time ReadBits: one ReadBit per bit.
func refRead(r *Reader, n int) (uint64, error) {
	var v uint64
	for i := 0; i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

type op struct {
	v uint64
	n int
}

// randomOps derives a (v,n) sequence from a seed, mixing WriteBits sizes
// with single-bit writes (the dominant codec pattern).
func randomOps(seed int64, count int) []op {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]op, count)
	for i := range ops {
		var n int
		switch rng.Intn(4) {
		case 0:
			n = 1
		case 1:
			n = rng.Intn(8) + 1
		case 2:
			n = rng.Intn(32) + 1
		default:
			n = rng.Intn(64) + 1
		}
		v := rng.Uint64()
		if n < 64 {
			v &= 1<<uint(n) - 1
		}
		ops[i] = op{v, n}
	}
	return ops
}

func TestWordWriterMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		ops := randomOps(seed, 1+int(seed%97))
		w := NewWriter()
		ref := &refWriter{}
		for _, o := range ops {
			w.WriteBits(o.v, o.n)
			ref.writeBits(o.v, o.n)
		}
		if w.Len() != ref.nbit {
			t.Fatalf("seed %d: fast Len %d, reference %d", seed, w.Len(), ref.nbit)
		}
		if !bytes.Equal(w.Bytes(), ref.buf) {
			t.Fatalf("seed %d: fast writer bytes diverge from bit-at-a-time reference", seed)
		}
	}
}

func TestWordReaderMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		ops := randomOps(seed, 1+int(seed%83))
		w := NewWriter()
		for _, o := range ops {
			w.WriteBits(o.v, o.n)
		}
		fast := FromWriter(w)
		ref := FromWriter(w)
		stream := NewStreamReader(bytes.NewReader(w.Bytes()), w.Len())
		for i, o := range ops {
			fv, ferr := fast.ReadBits(o.n)
			rv, rerr := refRead(ref, o.n)
			sv, serr := stream.ReadBits(o.n)
			if ferr != nil || rerr != nil || serr != nil {
				t.Fatalf("seed %d op %d: errors %v/%v/%v", seed, i, ferr, rerr, serr)
			}
			if fv != o.v || rv != o.v || sv != o.v {
				t.Fatalf("seed %d op %d: wrote %x/%d, read fast=%x ref=%x stream=%x",
					seed, i, o.v, o.n, fv, rv, sv)
			}
		}
		if fast.Remaining() != 0 {
			t.Fatalf("seed %d: %d bits left over", seed, fast.Remaining())
		}
		if _, err := stream.ReadBit(); !errors.Is(err, ErrEOS) {
			t.Fatalf("seed %d: stream reader past end: %v", seed, err)
		}
	}
}

// TestInterleavedBitAndWord mixes WriteBit with WriteBits at every
// alignment, the pattern the prefix-code encoders produce.
func TestInterleavedBitAndWord(t *testing.T) {
	for lead := 0; lead < 9; lead++ {
		for n := 0; n <= 64; n++ {
			w := NewWriter()
			ref := &refWriter{}
			for i := 0; i < lead; i++ {
				w.WriteBit(uint(i) & 1)
				ref.writeBit(uint(i) & 1)
			}
			v := uint64(0xA5A5A5A5A5A5A5A5)
			if n < 64 {
				v &= 1<<uint(n) - 1
			}
			w.WriteBits(v, n)
			ref.writeBits(v, n)
			w.WriteBit(1)
			ref.writeBit(1)
			if !bytes.Equal(w.Bytes(), ref.buf) || w.Len() != ref.nbit {
				t.Fatalf("lead=%d n=%d: divergence from reference", lead, n)
			}
		}
	}
}

// TestStreamReaderTinyReads feeds the streaming reader through a
// one-byte-at-a-time source to exercise every refill boundary.
func TestStreamReaderTinyReads(t *testing.T) {
	ops := randomOps(42, 300)
	w := NewWriter()
	for _, o := range ops {
		w.WriteBits(o.v, o.n)
	}
	sr := NewStreamReader(&oneByteReader{data: w.Bytes()}, w.Len())
	for i, o := range ops {
		v, err := sr.ReadBits(o.n)
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if v != o.v {
			t.Fatalf("op %d: got %x want %x", i, v, o.v)
		}
	}
}

// oneByteReader returns one byte per Read call.
type oneByteReader struct{ data []byte }

func (s *oneByteReader) Read(p []byte) (int, error) {
	if len(s.data) == 0 {
		return 0, io.EOF
	}
	p[0] = s.data[0]
	s.data = s.data[1:]
	return 1, nil
}

func TestStreamReaderLimit(t *testing.T) {
	data := []byte{0xFF, 0xFF}
	sr := NewStreamReader(bytes.NewReader(data), 10)
	if v, err := sr.ReadBits(10); err != nil || v != 0x3FF {
		t.Fatalf("got %x err %v", v, err)
	}
	if _, err := sr.ReadBit(); !errors.Is(err, ErrEOS) {
		t.Fatalf("limit not enforced: %v", err)
	}
	if sr.Pos() != 10 {
		t.Fatalf("Pos=%d want 10", sr.Pos())
	}
	// A limit the source cannot satisfy surfaces as wrapped EOS.
	sr = NewStreamReader(bytes.NewReader(data), 100)
	if _, err := sr.ReadBits(64); !errors.Is(err, ErrEOS) {
		t.Fatalf("truncated source: %v", err)
	}
}

func TestStreamReaderWideReads(t *testing.T) {
	w := NewWriter()
	vals := []uint64{0, 1, 0xFFFFFFFFFFFFFFFF, 0x8000000000000001, 0xDEADBEEFCAFEF00D}
	for _, v := range vals {
		w.WriteBits(v, 64)
		w.WriteBits(v&0x1FFFFFFFFFFFFFF, 57)
	}
	sr := NewStreamReader(bytes.NewReader(w.Bytes()), w.Len())
	for i, v := range vals {
		got, err := sr.ReadBits(64)
		if err != nil || got != v {
			t.Fatalf("val %d: got %x err %v", i, got, err)
		}
		got, err = sr.ReadBits(57)
		if err != nil || got != v&0x1FFFFFFFFFFFFFF {
			t.Fatalf("val %d (57-bit): got %x err %v", i, got, err)
		}
	}
}

// FuzzBitstreamWords interprets the fuzz input as a (v,n) op sequence
// and cross-checks the word-wise writer/readers against the
// bit-at-a-time reference on every mutation.
func FuzzBitstreamWords(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0xFF})
	f.Add([]byte{64, 1, 2, 3, 4, 5, 6, 7, 8, 33, 0xAA, 0xBB, 0xCC, 0xDD, 0xEE})
	f.Add([]byte{8, 0x80, 57, 1, 2, 3, 4, 5, 6, 7, 3, 0x05, 64, 9, 9, 9, 9, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		var ops []op
		for len(data) > 0 {
			n := int(data[0])%64 + 1
			data = data[1:]
			nbytes := (n + 7) / 8
			var v uint64
			for i := 0; i < nbytes; i++ {
				v <<= 8
				if i < len(data) {
					v |= uint64(data[i])
				}
			}
			if nbytes <= len(data) {
				data = data[nbytes:]
			} else {
				data = nil
			}
			if n < 64 {
				v &= 1<<uint(n) - 1
			}
			ops = append(ops, op{v, n})
			if len(ops) >= 1<<12 {
				break
			}
		}
		w := NewWriter()
		ref := &refWriter{}
		for _, o := range ops {
			if err := w.TryWriteBits(o.v, o.n); err != nil {
				t.Fatalf("TryWriteBits(%x, %d): %v", o.v, o.n, err)
			}
			ref.writeBits(o.v, o.n)
		}
		if !bytes.Equal(w.Bytes(), ref.buf) || w.Len() != ref.nbit {
			t.Fatal("word-wise writer diverges from bit-at-a-time reference")
		}
		fast := FromWriter(w)
		stream := NewStreamReader(bytes.NewReader(w.Bytes()), w.Len())
		for i, o := range ops {
			fv, err := fast.ReadBits(o.n)
			if err != nil {
				t.Fatalf("op %d: fast read: %v", i, err)
			}
			sv, err := stream.ReadBits(o.n)
			if err != nil {
				t.Fatalf("op %d: stream read: %v", i, err)
			}
			if fv != o.v || sv != o.v {
				t.Fatalf("op %d: wrote %x/%d, read fast=%x stream=%x", i, o.v, o.n, fv, sv)
			}
		}
	})
}

func BenchmarkBitstreamWrite(b *testing.B) {
	ops := randomOps(1, 4096)
	b.Run("WriteBits", func(b *testing.B) {
		w := NewWriter()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w.Reset()
			for _, o := range ops {
				w.WriteBits(o.v, o.n)
			}
		}
		b.SetBytes(int64(w.Len() / 8))
	})
	b.Run("WriteBit", func(b *testing.B) {
		w := NewWriter()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w.Reset()
			for j := 0; j < 4096; j++ {
				w.WriteBit(uint(j) & 1)
			}
		}
		b.SetBytes(4096 / 8)
	})
}

func BenchmarkBitstreamRead(b *testing.B) {
	ops := randomOps(2, 4096)
	w := NewWriter()
	for _, o := range ops {
		w.WriteBits(o.v, o.n)
	}
	b.Run("ReadBits", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(w.Len() / 8))
		for i := 0; i < b.N; i++ {
			r := FromWriter(w)
			for _, o := range ops {
				if _, err := r.ReadBits(o.n); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("StreamReader", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(w.Len() / 8))
		for i := 0; i < b.N; i++ {
			r := NewStreamReader(bytes.NewReader(w.Bytes()), w.Len())
			for _, o := range ops {
				if _, err := r.ReadBits(o.n); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
