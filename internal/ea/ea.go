// Package ea implements the evolutionary algorithm of Figure 1 of the
// paper (the role played there by the GAME package): a population of S
// individuals, C children per generation produced by crossover, mutation
// and inversion, truncation selection of the best S out of S+C, and
// termination on a fitness-stagnation window or an evaluation budget.
//
// The engine is problem-agnostic: individuals are genomes over a small
// integer alphabet and fitness is supplied by the caller. Fitness
// evaluations of a generation's children run in parallel.
package ea

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/pipeline"
)

// Gene is one genome symbol; the paper's alphabet is {0, 1, U}.
type Gene = uint8

// Problem defines the optimization instance.
type Problem interface {
	// GenomeLen returns the genome length (K·L in the paper).
	GenomeLen() int
	// Alphabet returns the number of gene values; genes take values
	// 0..Alphabet()-1.
	Alphabet() int
	// Fitness evaluates a genome; higher is better. Must be safe for
	// concurrent calls.
	Fitness(genes []Gene) float64
	// Repair normalizes a genome in place after random init or an
	// operator application (e.g. re-pinning the all-U matching vector).
	// May be a no-op.
	Repair(genes []Gene)
}

// CrossoverKind selects the recombination style.
type CrossoverKind int

const (
	// UniformCrossover swaps each gene between the two children
	// independently with probability 1/2 ("genes of one parent in several
	// positions and the genes of the other parent in others").
	UniformCrossover CrossoverKind = iota
	// TwoPointCrossover exchanges the gene segment between two random cut
	// points.
	TwoPointCrossover
)

// Config holds the EA parameters. The zero value is not usable; call
// DefaultConfig for the paper's defaults.
type Config struct {
	PopSize   int     // S: population size
	Children  int     // C: children per generation
	PCross    float64 // probability a child pair is produced by crossover
	PMut      float64 // probability a child is produced by mutation
	PInv      float64 // probability a child is produced by inversion
	Crossover CrossoverKind

	// MaxNoImprove terminates after this many consecutive generations
	// without a best-fitness improvement (paper: 500 for Table 2).
	MaxNoImprove int
	// MaxGenerations is a hard cap on generations (0 = unlimited).
	MaxGenerations int
	// MaxEvals bounds the number of fitness evaluations, the paper's
	// "limit on the number of generated legal solutions" (0 = unlimited).
	MaxEvals int

	Seed    int64
	Workers int // parallel fitness evaluations; 0 = GOMAXPROCS-sized default
}

// DefaultConfig returns the parameters reported in Section 4: S=10, C=5,
// crossover 30%, mutation 30%, inversion 10%.
func DefaultConfig(seed int64) Config {
	return Config{
		PopSize:        10,
		Children:       5,
		PCross:         0.30,
		PMut:           0.30,
		PInv:           0.10,
		Crossover:      UniformCrossover,
		MaxNoImprove:   100,
		MaxGenerations: 5000,
		MaxEvals:       0,
		Seed:           seed,
		Workers:        0,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.PopSize < 2 {
		return fmt.Errorf("ea: PopSize must be >= 2, got %d", c.PopSize)
	}
	if c.Children < 1 {
		return fmt.Errorf("ea: Children must be >= 1, got %d", c.Children)
	}
	for _, p := range []float64{c.PCross, c.PMut, c.PInv} {
		if p < 0 || p > 1 {
			return fmt.Errorf("ea: operator probability out of [0,1]")
		}
	}
	if c.PCross+c.PMut+c.PInv <= 0 {
		return fmt.Errorf("ea: all operator probabilities are zero")
	}
	if c.MaxNoImprove <= 0 && c.MaxGenerations <= 0 && c.MaxEvals <= 0 {
		return fmt.Errorf("ea: no termination condition configured")
	}
	return nil
}

// Individual pairs a genome with its fitness.
type Individual struct {
	Genes   []Gene
	Fitness float64
}

func (ind Individual) clone() Individual {
	return Individual{Genes: append([]Gene(nil), ind.Genes...), Fitness: ind.Fitness}
}

// GenStats records one generation for convergence analysis (the data behind
// Figure 1's loop).
type GenStats struct {
	Generation int
	Best       float64
	Mean       float64
	Evals      int // cumulative fitness evaluations
}

// Result is the outcome of a run.
type Result struct {
	Best        Individual
	Generations int
	Evals       int
	History     []GenStats
}

// Run executes the EA on problem with config cfg. Deterministic given
// cfg.Seed (parallel evaluation does not perturb the evolution order).
func Run(cfg Config, problem Problem, seedIndividuals ...[]Gene) (*Result, error) {
	return RunCtx(context.Background(), cfg, problem, seedIndividuals...)
}

// RunCtx is Run with cancellation: when ctx is cancelled the EA stops at
// the next evaluation boundary and returns ctx's error alongside the
// best-so-far result (which may be nil if no generation completed).
func RunCtx(ctx context.Context, cfg Config, problem Problem, seedIndividuals ...[]Gene) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := problem.GenomeLen()
	alpha := problem.Alphabet()
	if n <= 0 || alpha < 2 {
		return nil, fmt.Errorf("ea: degenerate problem (len=%d alphabet=%d)", n, alpha)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	pop := make([]Individual, 0, cfg.PopSize+cfg.Children)
	for _, s := range seedIndividuals {
		if len(s) != n {
			return nil, fmt.Errorf("ea: seed individual has length %d, want %d", len(s), n)
		}
		g := append([]Gene(nil), s...)
		problem.Repair(g)
		pop = append(pop, Individual{Genes: g})
	}
	for len(pop) < cfg.PopSize {
		g := make([]Gene, n)
		for i := range g {
			g[i] = Gene(rng.Intn(alpha))
		}
		problem.Repair(g)
		pop = append(pop, Individual{Genes: g})
	}
	pop = pop[:cfg.PopSize]

	evals := 0
	if err := cfg.evaluate(ctx, problem, pop); err != nil {
		return nil, err
	}
	evals += len(pop)
	sortPop(pop)

	res := &Result{Best: pop[0].clone()}
	res.History = append(res.History, stats(0, pop, evals))

	noImprove := 0
	gen := 0
	for {
		if err := ctx.Err(); err != nil {
			res.Generations = gen
			res.Evals = evals
			return res, err
		}
		gen++
		if cfg.MaxGenerations > 0 && gen > cfg.MaxGenerations {
			break
		}
		if cfg.MaxEvals > 0 && evals >= cfg.MaxEvals {
			break
		}

		children := make([]Individual, 0, cfg.Children)
		for len(children) < cfg.Children {
			op := pickOperator(rng, cfg)
			switch op {
			case opCross:
				a := pop[rng.Intn(len(pop))]
				b := pop[rng.Intn(len(pop))]
				c1, c2 := crossover(rng, cfg.Crossover, a.Genes, b.Genes)
				problem.Repair(c1)
				children = append(children, Individual{Genes: c1})
				if len(children) < cfg.Children {
					problem.Repair(c2)
					children = append(children, Individual{Genes: c2})
				}
			case opMut:
				p := pop[rng.Intn(len(pop))]
				c := mutate(rng, p.Genes, alpha)
				problem.Repair(c)
				children = append(children, Individual{Genes: c})
			case opInv:
				p := pop[rng.Intn(len(pop))]
				c := invert(rng, p.Genes)
				problem.Repair(c)
				children = append(children, Individual{Genes: c})
			}
		}

		if err := cfg.evaluate(ctx, problem, children); err != nil {
			res.Generations = gen
			res.Evals = evals
			return res, err
		}
		evals += len(children)

		pop = append(pop, children...)
		sortPop(pop)
		pop = pop[:cfg.PopSize]

		if pop[0].Fitness > res.Best.Fitness {
			res.Best = pop[0].clone()
			noImprove = 0
		} else {
			noImprove++
		}
		res.History = append(res.History, stats(gen, pop, evals))

		if cfg.MaxNoImprove > 0 && noImprove >= cfg.MaxNoImprove {
			break
		}
	}

	res.Generations = gen
	res.Evals = evals
	return res, nil
}

type operator int

const (
	opCross operator = iota
	opMut
	opInv
)

func pickOperator(rng *rand.Rand, cfg Config) operator {
	total := cfg.PCross + cfg.PMut + cfg.PInv
	x := rng.Float64() * total
	if x < cfg.PCross {
		return opCross
	}
	if x < cfg.PCross+cfg.PMut {
		return opMut
	}
	return opInv
}

func crossover(rng *rand.Rand, kind CrossoverKind, a, b []Gene) ([]Gene, []Gene) {
	n := len(a)
	c1 := append([]Gene(nil), a...)
	c2 := append([]Gene(nil), b...)
	switch kind {
	case TwoPointCrossover:
		i, j := rng.Intn(n), rng.Intn(n)
		if i > j {
			i, j = j, i
		}
		for k := i; k <= j; k++ {
			c1[k], c2[k] = c2[k], c1[k]
		}
	default: // UniformCrossover
		for k := 0; k < n; k++ {
			if rng.Intn(2) == 0 {
				c1[k], c2[k] = c2[k], c1[k]
			}
		}
	}
	return c1, c2
}

// mutate replaces one randomly selected gene by a random value (the paper's
// mutation operator).
func mutate(rng *rand.Rand, a []Gene, alphabet int) []Gene {
	c := append([]Gene(nil), a...)
	i := rng.Intn(len(c))
	c[i] = Gene(rng.Intn(alphabet))
	return c
}

// invert reverses the gene order between two random positions (the paper's
// inversion operator).
func invert(rng *rand.Rand, a []Gene) []Gene {
	c := append([]Gene(nil), a...)
	i, j := rng.Intn(len(c)), rng.Intn(len(c))
	if i > j {
		i, j = j, i
	}
	for i < j {
		c[i], c[j] = c[j], c[i]
		i++
		j--
	}
	return c
}

// evaluate fills in fitness for individuals on the shared worker pool
// (pipeline.Default's limiter, so fitness helpers compose with job-level
// parallelism without oversubscription). ForEach clamps Workers to
// len(inds) so tiny populations never spawn idle goroutines, and <= 0
// selects the GOMAXPROCS-sized default. Writes are index-disjoint, so
// the outcome is identical for any worker count.
func (c Config) evaluate(ctx context.Context, problem Problem, inds []Individual) error {
	return pipeline.ForEach(ctx, nil, len(inds), c.Workers, func(i int) {
		inds[i].Fitness = problem.Fitness(inds[i].Genes)
	})
}

// sortPop orders by descending fitness, stable so earlier individuals win
// ties (deterministic runs).
func sortPop(pop []Individual) {
	sort.SliceStable(pop, func(i, j int) bool { return pop[i].Fitness > pop[j].Fitness })
}

func stats(gen int, pop []Individual, evals int) GenStats {
	sum := 0.0
	for _, ind := range pop {
		sum += ind.Fitness
	}
	return GenStats{Generation: gen, Best: pop[0].Fitness, Mean: sum / float64(len(pop)), Evals: evals}
}
