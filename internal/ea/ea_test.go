package ea

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// oneMax is the classic benchmark: fitness = number of genes equal to 1.
type oneMax struct {
	n     int
	alpha int
}

func (p oneMax) GenomeLen() int { return p.n }
func (p oneMax) Alphabet() int  { return p.alpha }
func (p oneMax) Repair([]Gene)  {}
func (p oneMax) Fitness(g []Gene) float64 {
	s := 0
	for _, x := range g {
		if x == 1 {
			s++
		}
	}
	return float64(s)
}

// pinned requires gene 0 to be 2 after Repair.
type pinned struct{ oneMax }

func (p pinned) Repair(g []Gene) { g[0] = 2 }

func TestValidate(t *testing.T) {
	good := DefaultConfig(1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.PopSize = 1 },
		func(c *Config) { c.Children = 0 },
		func(c *Config) { c.PCross = -0.1 },
		func(c *Config) { c.PMut = 1.5 },
		func(c *Config) { c.PCross, c.PMut, c.PInv = 0, 0, 0 },
		func(c *Config) { c.MaxNoImprove, c.MaxGenerations, c.MaxEvals = 0, 0, 0 },
	}
	for i, mod := range bad {
		c := DefaultConfig(1)
		mod(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRunSolvesOneMax(t *testing.T) {
	cfg := DefaultConfig(42)
	cfg.PopSize = 20
	cfg.Children = 20
	cfg.MaxNoImprove = 200
	cfg.MaxGenerations = 2000
	res, err := Run(cfg, oneMax{n: 30, alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Fitness < 28 {
		t.Fatalf("EA reached only %.0f/30 on OneMax", res.Best.Fitness)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	cfg := DefaultConfig(7)
	cfg.MaxGenerations = 50
	cfg.MaxNoImprove = 50
	cfg.Workers = 4 // parallel eval must not perturb evolution
	a, err := Run(cfg, oneMax{n: 20, alpha: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, oneMax{n: 20, alpha: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.Best.Fitness != b.Best.Fitness || a.Generations != b.Generations || a.Evals != b.Evals {
		t.Fatalf("non-deterministic: %+v vs %+v", a.Best.Fitness, b.Best.Fitness)
	}
	for i := range a.Best.Genes {
		if a.Best.Genes[i] != b.Best.Genes[i] {
			t.Fatal("best genomes differ across identical runs")
		}
	}
}

func TestElitismMonotoneBest(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.MaxGenerations = 100
	cfg.MaxNoImprove = 100
	res, err := Run(cfg, oneMax{n: 25, alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, g := range res.History {
		if g.Best < prev {
			t.Fatalf("best fitness decreased: gen %d %.1f < %.1f", g.Generation, g.Best, prev)
		}
		prev = g.Best
	}
}

func TestRepairInvariantMaintained(t *testing.T) {
	cfg := DefaultConfig(5)
	cfg.MaxGenerations = 30
	cfg.MaxNoImprove = 30
	res, err := Run(cfg, pinned{oneMax{n: 10, alpha: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Genes[0] != 2 {
		t.Fatal("Repair pin not maintained on best individual")
	}
}

func TestSeedIndividualUsed(t *testing.T) {
	// Seeding the optimum must make the run start at the optimum.
	n := 15
	opt := make([]Gene, n)
	for i := range opt {
		opt[i] = 1
	}
	cfg := DefaultConfig(11)
	cfg.MaxGenerations = 1
	cfg.MaxNoImprove = 1
	res, err := Run(cfg, oneMax{n: n, alpha: 2}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Fitness != float64(n) {
		t.Fatalf("seeded optimum lost: best=%.0f", res.Best.Fitness)
	}
	// Wrong-length seed rejected.
	if _, err := Run(cfg, oneMax{n: n, alpha: 2}, make([]Gene, n+1)); err == nil {
		t.Fatal("bad seed length accepted")
	}
}

func TestMaxEvalsBudget(t *testing.T) {
	cfg := DefaultConfig(13)
	cfg.MaxEvals = 30
	cfg.MaxGenerations = 0
	cfg.MaxNoImprove = 0
	cfg.MaxEvals = 30
	res, err := Run(cfg, oneMax{n: 10, alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Budget may be exceeded by at most one generation's children.
	if res.Evals > 30+cfg.Children {
		t.Fatalf("evals=%d exceeded budget", res.Evals)
	}
}

func TestTwoPointCrossover(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := make([]Gene, 10)
	b := make([]Gene, 10)
	for i := range b {
		b[i] = 1
	}
	c1, c2 := crossover(rng, TwoPointCrossover, a, b)
	// children must be complementary and contain a contiguous swapped
	// segment
	for i := range c1 {
		if c1[i]+c2[i] != 1 {
			t.Fatalf("complementarity violated at %d", i)
		}
	}
	changes := 0
	for i := 1; i < len(c1); i++ {
		if c1[i] != c1[i-1] {
			changes++
		}
	}
	if changes > 2 {
		t.Fatalf("two-point crossover produced %d segment changes", changes)
	}
}

func TestUniformCrossoverPreservesMultiset(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := []Gene{0, 0, 0, 0, 0}
	b := []Gene{1, 1, 1, 1, 1}
	c1, c2 := crossover(rng, UniformCrossover, a, b)
	for i := range c1 {
		if c1[i]+c2[i] != 1 {
			t.Fatal("uniform crossover must exchange positionwise")
		}
	}
}

func TestMutateChangesAtMostOneGene(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 100; iter++ {
		a := make([]Gene, 8)
		for i := range a {
			a[i] = Gene(rng.Intn(3))
		}
		c := mutate(rng, a, 3)
		diff := 0
		for i := range a {
			if a[i] != c[i] {
				diff++
			}
		}
		if diff > 1 {
			t.Fatalf("mutation changed %d genes", diff)
		}
	}
}

func TestInvertIsReversal(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := []Gene{0, 1, 2, 3, 4, 5, 6, 7}
	// Property: inversion preserves the multiset of genes.
	for iter := 0; iter < 50; iter++ {
		c := invert(rng, a)
		var countA, countC [8]int
		for i := range a {
			countA[a[i]]++
			countC[c[i]]++
		}
		if countA != countC {
			t.Fatal("inversion changed gene multiset")
		}
	}
}

func TestQuickPopulationSizeInvariant(t *testing.T) {
	f := func(seed int64) bool {
		cfg := DefaultConfig(seed)
		cfg.MaxGenerations = 10
		cfg.MaxNoImprove = 10
		res, err := Run(cfg, oneMax{n: 8, alpha: 2})
		if err != nil {
			return false
		}
		// History has one entry per generation (+initial), evals
		// consistent with S + gens*C.
		return res.Evals == cfg.PopSize+res.Generations*cfg.Children ||
			res.Evals <= cfg.PopSize+res.Generations*cfg.Children
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDegenerateProblemRejected(t *testing.T) {
	cfg := DefaultConfig(1)
	if _, err := Run(cfg, oneMax{n: 0, alpha: 2}); err == nil {
		t.Fatal("zero-length genome accepted")
	}
	if _, err := Run(cfg, oneMax{n: 5, alpha: 1}); err == nil {
		t.Fatal("unary alphabet accepted")
	}
}

func TestPickOperatorDistribution(t *testing.T) {
	cfg := DefaultConfig(1)
	rng := rand.New(rand.NewSource(99))
	var counts [3]int
	for i := 0; i < 10000; i++ {
		counts[pickOperator(rng, cfg)]++
	}
	// 30/30/10 normalized => ~42.8%, 42.8%, 14.3%
	if counts[opCross] < 3500 || counts[opMut] < 3500 || counts[opInv] < 800 {
		t.Fatalf("operator distribution off: %v", counts)
	}
}

func TestWorkerCountDoesNotPerturbResults(t *testing.T) {
	// Oversized, tiny, and default worker counts must all give the same
	// run — evaluate clamps workers to the population and GOMAXPROCS.
	runWith := func(workers int) *Result {
		cfg := DefaultConfig(13)
		cfg.MaxGenerations = 40
		cfg.MaxNoImprove = 40
		cfg.Workers = workers
		res, err := Run(cfg, oneMax{n: 20, alpha: 3})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := runWith(1)
	for _, workers := range []int{0, 2, 64} {
		got := runWith(workers)
		if got.Best.Fitness != want.Best.Fitness || got.Generations != want.Generations || got.Evals != want.Evals {
			t.Fatalf("workers=%d diverged: %+v vs %+v", workers, got, want)
		}
	}
}

func TestRunCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := DefaultConfig(17)
	_, err := RunCtx(ctx, cfg, oneMax{n: 20, alpha: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
