package circuit

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// BenchLimits bounds what ParseBenchLimited accepts. Zero fields mean
// "no bound" — ParseBench passes the zero value. Daemon-facing parsers
// must set all of them: .bench text is tiny relative to the arrays a
// netlist expands into, so a hostile submission can otherwise declare
// work far beyond its body size.
type BenchLimits struct {
	// MaxSignals caps the total signal count (inputs + gates).
	MaxSignals int
	// MaxInputs caps primary (and pseudo primary) inputs — the test-set
	// width every downstream pattern allocates.
	MaxInputs int
	// MaxFanin caps the fanin list of a single gate.
	MaxFanin int
}

// ErrBenchTooLarge is wrapped by ParseBenchLimited when a netlist
// exceeds its limits; callers map it onto their own "invalid circuit"
// taxonomy.
var ErrBenchTooLarge = fmt.Errorf("circuit: netlist exceeds size limits")

// ParseBench reads a netlist in the ISCAS .bench dialect:
//
//	# comment
//	INPUT(G1)
//	OUTPUT(G17)
//	G10 = NAND(G1, G3)
//	G11 = DFF(G10)
//
// DFF gates are extracted into the combinational part: the flip-flop
// output becomes a pseudo primary input and the flip-flop data signal a
// pseudo primary output.
func ParseBench(name string, r io.Reader) (*Circuit, error) {
	return ParseBenchLimited(name, r, BenchLimits{})
}

// ParseBenchLimited is ParseBench with declared-size caps, enforced
// while scanning so an oversized netlist is rejected before its arrays
// are built.
func ParseBenchLimited(name string, r io.Reader, lim BenchLimits) (*Circuit, error) {
	b := NewBuilder(name)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<22)
	lineNo := 0
	check := func() error {
		if lim.MaxSignals > 0 && b.NumSignals() > lim.MaxSignals {
			return fmt.Errorf("line %d: %w: more than %d signals", lineNo, ErrBenchTooLarge, lim.MaxSignals)
		}
		if lim.MaxInputs > 0 && b.NumInputs() > lim.MaxInputs {
			return fmt.Errorf("line %d: %w: more than %d inputs", lineNo, ErrBenchTooLarge, lim.MaxInputs)
		}
		return nil
	}
	var ppoSignals []string
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		up := strings.ToUpper(line)
		switch {
		case strings.HasPrefix(up, "INPUT"):
			arg, err := parenArg(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			b.AddInput(arg)
			if err := check(); err != nil {
				return nil, err
			}
		case strings.HasPrefix(up, "OUTPUT"):
			arg, err := parenArg(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			b.AddOutput(arg)
		default:
			eq := strings.Index(line, "=")
			if eq < 0 {
				return nil, fmt.Errorf("line %d: expected assignment, got %q", lineNo, line)
			}
			lhs := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			open := strings.Index(rhs, "(")
			close := strings.LastIndex(rhs, ")")
			if open < 0 || close < open {
				return nil, fmt.Errorf("line %d: malformed gate %q", lineNo, line)
			}
			fn := strings.ToUpper(strings.TrimSpace(rhs[:open]))
			var fanin []string
			for _, f := range strings.Split(rhs[open+1:close], ",") {
				f = strings.TrimSpace(f)
				if f != "" {
					fanin = append(fanin, f)
				}
			}
			if lim.MaxFanin > 0 && len(fanin) > lim.MaxFanin {
				return nil, fmt.Errorf("line %d: %w: gate with %d fanins (max %d)", lineNo, ErrBenchTooLarge, len(fanin), lim.MaxFanin)
			}
			if fn == "DFF" {
				if len(fanin) != 1 {
					return nil, fmt.Errorf("line %d: DFF needs 1 fanin", lineNo)
				}
				b.AddInput(lhs) // FF output -> pseudo primary input
				ppoSignals = append(ppoSignals, fanin[0])
				if err := check(); err != nil {
					return nil, err
				}
				continue
			}
			t, ok := parseGateType(fn)
			if !ok {
				return nil, fmt.Errorf("line %d: unknown gate type %q", lineNo, fn)
			}
			if (t == Buf || t == Not) && len(fanin) != 1 {
				return nil, fmt.Errorf("line %d: %s needs 1 fanin", lineNo, fn)
			}
			// Single-input AND/OR in some bench files act as buffers.
			if len(fanin) == 1 && (t == And || t == Or) {
				t = Buf
			}
			if len(fanin) == 1 && (t == Nand || t == Nor) {
				t = Not
			}
			if _, err := b.AddGate(lhs, t, fanin...); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			if err := check(); err != nil {
				return nil, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, s := range ppoSignals {
		b.AddOutput(s)
	}
	return b.Finalize()
}

func parseGateType(fn string) (GateType, bool) {
	switch fn {
	case "BUF", "BUFF":
		return Buf, true
	case "NOT", "INV":
		return Not, true
	case "AND":
		return And, true
	case "NAND":
		return Nand, true
	case "OR":
		return Or, true
	case "NOR":
		return Nor, true
	case "XOR":
		return Xor, true
	case "XNOR":
		return Xnor, true
	}
	return Input, false
}

func parenArg(line string) (string, error) {
	open := strings.Index(line, "(")
	close := strings.LastIndex(line, ")")
	if open < 0 || close < open {
		return "", fmt.Errorf("malformed declaration %q", line)
	}
	arg := strings.TrimSpace(line[open+1 : close])
	if arg == "" {
		return "", fmt.Errorf("empty name in %q", line)
	}
	return arg, nil
}

// WriteBench serializes the circuit in .bench format (pseudo inputs and
// outputs are emitted as plain INPUT/OUTPUT declarations).
func (c *Circuit) WriteBench(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", c.Name)
	for _, id := range c.Inputs {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.Names[id])
	}
	for _, id := range c.Outputs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.Names[id])
	}
	ids := make([]int, 0, c.NumSignals())
	for id, t := range c.Types {
		if t != Input {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		names := make([]string, len(c.Fanin[id]))
		for i, f := range c.Fanin[id] {
			names[i] = c.Names[f]
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", c.Names[id], c.Types[id], strings.Join(names, ", "))
	}
	return bw.Flush()
}

// C17 returns the ISCAS-85 c17 benchmark circuit (the classic 6-NAND
// example), built from its well-known netlist.
func C17() *Circuit {
	b := NewBuilder("c17")
	for _, in := range []string{"G1", "G2", "G3", "G6", "G7"} {
		b.AddInput(in)
	}
	b.AddOutput("G22")
	b.AddOutput("G23")
	mustGate := func(name string, t GateType, fanin ...string) {
		if _, err := b.AddGate(name, t, fanin...); err != nil {
			panic(err)
		}
	}
	mustGate("G10", Nand, "G1", "G3")
	mustGate("G11", Nand, "G3", "G6")
	mustGate("G16", Nand, "G2", "G11")
	mustGate("G19", Nand, "G11", "G7")
	mustGate("G22", Nand, "G10", "G16")
	mustGate("G23", Nand, "G16", "G19")
	c, err := b.Finalize()
	if err != nil {
		panic(err)
	}
	return c
}
