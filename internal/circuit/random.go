package circuit

import (
	"fmt"
	"math/rand"
)

// RandomOptions configures synthetic netlist generation.
type RandomOptions struct {
	Inputs  int
	Gates   int
	Outputs int
	// MaxFanin bounds gate fanin (>= 2); default 3.
	MaxFanin int
	Seed     int64
}

// Random generates a deterministic random combinational circuit: gates are
// created in levelized order with fanins drawn from earlier signals
// (biased toward recent ones, which yields deep, path-rich structures),
// and outputs are drawn from the last gates plus any dangling signals.
func Random(name string, opt RandomOptions) (*Circuit, error) {
	if opt.Inputs < 1 || opt.Gates < 1 || opt.Outputs < 1 {
		return nil, fmt.Errorf("circuit: Random needs >=1 input, gate and output")
	}
	if opt.MaxFanin < 2 {
		opt.MaxFanin = 3
	}
	r := rand.New(rand.NewSource(opt.Seed))
	b := NewBuilder(name)
	var signals []string
	for i := 0; i < opt.Inputs; i++ {
		n := fmt.Sprintf("I%d", i)
		b.AddInput(n)
		signals = append(signals, n)
	}
	types := []GateType{And, Nand, Or, Nor, Xor, Xnor, Not, Buf}
	weights := []int{20, 25, 20, 15, 8, 4, 6, 2} // NAND-heavy, like ISCAS
	totalW := 0
	for _, w := range weights {
		totalW += w
	}
	pickType := func() GateType {
		x := r.Intn(totalW)
		for i, w := range weights {
			if x < w {
				return types[i]
			}
			x -= w
		}
		return Nand
	}
	// pickSignal prefers recent signals: index drawn from the last
	// half with probability 3/4.
	pickSignal := func() string {
		n := len(signals)
		if n == 1 || r.Intn(4) > 0 && n > 4 {
			lo := n / 2
			return signals[lo+r.Intn(n-lo)]
		}
		return signals[r.Intn(n)]
	}
	for g := 0; g < opt.Gates; g++ {
		name := fmt.Sprintf("N%d", g)
		t := pickType()
		var fanin []string
		if t == Not || t == Buf {
			fanin = []string{pickSignal()}
		} else {
			k := 2 + r.Intn(opt.MaxFanin-1)
			seen := map[string]bool{}
			for len(fanin) < k {
				s := pickSignal()
				if !seen[s] {
					seen[s] = true
					fanin = append(fanin, s)
				}
				if len(seen) == len(signals) {
					break
				}
			}
			if len(fanin) < 2 {
				t = Buf
				fanin = fanin[:1]
			}
		}
		if _, err := b.AddGate(name, t, fanin...); err != nil {
			return nil, err
		}
		signals = append(signals, name)
	}
	// Outputs: prefer the most recently created gates.
	for o := 0; o < opt.Outputs; o++ {
		idx := len(signals) - 1 - o
		if idx < 0 {
			idx = r.Intn(len(signals))
		}
		b.AddOutput(signals[idx])
	}
	return b.Finalize()
}
