package circuit

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/tritvec"
)

func TestC17Structure(t *testing.T) {
	c := C17()
	if len(c.Inputs) != 5 || len(c.Outputs) != 2 {
		t.Fatalf("c17: %d inputs %d outputs", len(c.Inputs), len(c.Outputs))
	}
	if c.NumGates() != 6 {
		t.Fatalf("c17: %d gates", c.NumGates())
	}
}

func TestC17TruthSample(t *testing.T) {
	c := C17()
	// All-zero input: G10=G11=1, G16=NAND(0,1)=1, G19=NAND(1,0)=1,
	// G22=NAND(1,1)=0, G23=NAND(1,1)=0.
	vals := c.Sim3(tritvec.MustFromString("00000"), nil)
	out := c.OutputsOf(vals)
	if out[0] != tritvec.Zero || out[1] != tritvec.Zero {
		t.Fatalf("c17(00000) = %v", out)
	}
	// All-ones: G10=NAND(1,1)=0, G11=0, G16=NAND(1,0)=1, G19=NAND(0,1)=1,
	// G22=NAND(0,1)=1, G23=NAND(1,1)=0.
	vals = c.Sim3(tritvec.MustFromString("11111"), nil)
	out = c.OutputsOf(vals)
	if out[0] != tritvec.One || out[1] != tritvec.Zero {
		t.Fatalf("c17(11111) = %v", out)
	}
}

func TestSim3XPropagation(t *testing.T) {
	c := C17()
	// With all inputs X, outputs must be X.
	vals := c.Sim3(tritvec.New(5), nil)
	for _, o := range c.OutputsOf(vals) {
		if o != tritvec.X {
			t.Fatal("all-X inputs must give X outputs")
		}
	}
	// Controlling value dominates X: NAND(0, X) = 1.
	b := NewBuilder("t")
	b.AddInput("a")
	b.AddInput("b")
	if _, err := b.AddGate("y", Nand, "a", "b"); err != nil {
		t.Fatal(err)
	}
	b.AddOutput("y")
	tc, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	vals = tc.Sim3(tritvec.MustFromString("0X"), nil)
	if vals[tc.SignalID("y")] != tritvec.One {
		t.Fatal("NAND(0,X) must be 1")
	}
	vals = tc.Sim3(tritvec.MustFromString("1X"), nil)
	if vals[tc.SignalID("y")] != tritvec.X {
		t.Fatal("NAND(1,X) must be X")
	}
}

func TestEval3AllGates(t *testing.T) {
	Z, O, XX := tritvec.Zero, tritvec.One, tritvec.X
	cases := []struct {
		t    GateType
		in   []tritvec.Trit
		want tritvec.Trit
	}{
		{Buf, []tritvec.Trit{O}, O},
		{Not, []tritvec.Trit{O}, Z},
		{Not, []tritvec.Trit{XX}, XX},
		{And, []tritvec.Trit{O, O, O}, O},
		{And, []tritvec.Trit{O, Z, XX}, Z},
		{And, []tritvec.Trit{O, XX}, XX},
		{Nand, []tritvec.Trit{O, O}, Z},
		{Or, []tritvec.Trit{Z, Z}, Z},
		{Or, []tritvec.Trit{Z, O, XX}, O},
		{Or, []tritvec.Trit{Z, XX}, XX},
		{Nor, []tritvec.Trit{Z, Z}, O},
		{Xor, []tritvec.Trit{O, O}, Z},
		{Xor, []tritvec.Trit{O, Z}, O},
		{Xor, []tritvec.Trit{O, XX}, XX},
		{Xnor, []tritvec.Trit{O, Z}, Z},
	}
	for _, c := range cases {
		if got := eval3(c.t, c.in); got != c.want {
			t.Errorf("%v%v = %v want %v", c.t, c.in, got, c.want)
		}
	}
}

func TestSim64AgreesWithSim3(t *testing.T) {
	c, err := Random("rnd", RandomOptions{Inputs: 8, Gates: 40, Outputs: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(4))
	// 64 random fully-specified patterns, evaluated both ways.
	words := make([]uint64, len(c.Inputs))
	patterns := make([]tritvec.Vector, 64)
	for p := 0; p < 64; p++ {
		v := tritvec.New(len(c.Inputs))
		v.FillRandom(r)
		patterns[p] = v
		for i := 0; i < v.Len(); i++ {
			if v.Get(i) == tritvec.One {
				words[i] |= 1 << uint(p)
			}
		}
	}
	par := c.Sim64(words, nil)
	for p := 0; p < 64; p++ {
		vals := c.Sim3(patterns[p], nil)
		for _, id := range c.Outputs {
			scalar := vals[id]
			bit := par[id] >> uint(p) & 1
			if (scalar == tritvec.One) != (bit == 1) {
				t.Fatalf("pattern %d signal %s: scalar %v parallel %d", p, c.Names[id], scalar, bit)
			}
		}
	}
}

func TestForceFault(t *testing.T) {
	c := C17()
	g10 := c.SignalID("G10")
	vals := c.Sim3(tritvec.MustFromString("11111"), &Force{Signal: g10, Value: tritvec.One})
	// Good: G22 = 1 (G10=0). Faulty G10=1: G22=NAND(1,1)=0.
	if vals[c.SignalID("G22")] != tritvec.Zero {
		t.Fatal("forcing G10=1 must flip G22 on 11111")
	}
	// Force on an input signal.
	g1 := c.SignalID("G1")
	vals = c.Sim3(tritvec.MustFromString("00000"), &Force{Signal: g1, Value: tritvec.One})
	if vals[g1] != tritvec.One {
		t.Fatal("input force ignored")
	}
}

func TestParseBenchRoundTrip(t *testing.T) {
	src := `
# test circuit
INPUT(a)
INPUT(b)
OUTPUT(y)
n1 = NAND(a, b)
y = NOT(n1)
`
	c, err := ParseBench("t", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Inputs) != 2 || len(c.Outputs) != 1 || c.NumGates() != 2 {
		t.Fatalf("parsed wrong shape: %d/%d/%d", len(c.Inputs), len(c.Outputs), c.NumGates())
	}
	vals := c.Sim3(tritvec.MustFromString("11"), nil)
	if vals[c.SignalID("y")] != tritvec.One {
		t.Fatal("y = NOT(NAND(1,1)) must be 1")
	}
	var buf bytes.Buffer
	if err := c.WriteBench(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := ParseBench("t2", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if c2.NumGates() != c.NumGates() || len(c2.Inputs) != len(c.Inputs) {
		t.Fatal("bench round trip changed circuit")
	}
}

func TestParseBenchDFFExtraction(t *testing.T) {
	src := `
INPUT(x)
OUTPUT(z)
q = DFF(d)
d = AND(x, q)
z = NOT(q)
`
	c, err := ParseBench("seq", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	// q becomes a pseudo input; d a pseudo output.
	if len(c.Inputs) != 2 {
		t.Fatalf("inputs=%d want 2 (x + pseudo q)", len(c.Inputs))
	}
	if len(c.Outputs) != 2 {
		t.Fatalf("outputs=%d want 2 (z + pseudo d)", len(c.Outputs))
	}
}

func TestParseBenchErrors(t *testing.T) {
	cases := []string{
		"INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n",
		"INPUT(a)\nOUTPUT(y)\ny NAND(a)\n",
		"INPUT(a)\nOUTPUT(y)\ny = NAND a\n",
		"INPUT()\n",
		"INPUT(a)\nOUTPUT(y)\ny = NOT(a, a)\n",
		"INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = NOT(a)\n", // double definition
		"INPUT(a)\nOUTPUT(y)\ny = DFF(a, a)\n",
		"INPUT(a)\nOUTPUT(y)\ny = NOT(z)\nz = NOT(y)\n", // loop
	}
	for i, src := range cases {
		if _, err := ParseBench("bad", strings.NewReader(src)); err == nil {
			t.Errorf("case %d: malformed bench accepted", i)
		}
	}
}

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder("v")
	b.AddInput("a")
	if _, err := b.AddGate("g", And, "a"); err == nil {
		t.Fatal("AND with one fanin accepted by AddGate")
	}
	if _, err := b.AddGate("a2", Input, "a"); err == nil {
		t.Fatal("gate of type Input accepted")
	}
	// Undriven non-input signal.
	b2 := NewBuilder("v2")
	b2.AddInput("a")
	if _, err := b2.AddGate("y", And, "a", "ghost"); err != nil {
		t.Fatal(err)
	}
	b2.AddOutput("y")
	if _, err := b2.Finalize(); err == nil {
		t.Fatal("undriven signal not detected")
	}
	// No outputs.
	b3 := NewBuilder("v3")
	b3.AddInput("a")
	if _, err := b3.Finalize(); err == nil {
		t.Fatal("no-output circuit accepted")
	}
}

func TestRandomCircuitDeterministic(t *testing.T) {
	opt := RandomOptions{Inputs: 6, Gates: 30, Outputs: 4, Seed: 7}
	a, err := Random("a", opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random("b", opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumSignals() != b.NumSignals() {
		t.Fatal("same seed produced different circuits")
	}
	for i := range a.Types {
		if a.Types[i] != b.Types[i] {
			t.Fatal("same seed produced different gate types")
		}
	}
	if _, err := Random("bad", RandomOptions{}); err == nil {
		t.Fatal("zero options accepted")
	}
}

func TestLevels(t *testing.T) {
	c := C17()
	lv := c.Levels()
	if lv[c.SignalID("G1")] != 0 {
		t.Fatal("input level must be 0")
	}
	if lv[c.SignalID("G22")] != 3 {
		t.Fatalf("G22 level=%d want 3", lv[c.SignalID("G22")])
	}
}

func TestInputIndex(t *testing.T) {
	c := C17()
	if c.InputIndex(c.SignalID("G2")) != 1 {
		t.Fatal("InputIndex wrong")
	}
	if c.InputIndex(c.SignalID("G22")) != -1 {
		t.Fatal("gate signal must have no input index")
	}
	if c.SignalID("nope") != -1 {
		t.Fatal("unknown signal id")
	}
}
