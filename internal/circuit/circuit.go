// Package circuit implements gate-level combinational netlists in the
// ISCAS ".bench" dialect: parsing, levelization, scalar 3-valued
// simulation (for ATPG over test patterns with X values) and 64-way
// bit-parallel 2-valued simulation (for fault simulation).
//
// Sequential elements (DFF) are handled the way the paper's experiments
// do: the "combinational part" is extracted by turning each flip-flop
// output into a pseudo primary input and each flip-flop input into a
// pseudo primary output.
package circuit

import (
	"fmt"

	"repro/internal/tritvec"
)

// GateType enumerates supported gate functions.
type GateType int

// Supported gate types.
const (
	Input GateType = iota
	Buf
	Not
	And
	Nand
	Or
	Nor
	Xor
	Xnor
)

var gateNames = map[GateType]string{
	Input: "INPUT", Buf: "BUF", Not: "NOT", And: "AND", Nand: "NAND",
	Or: "OR", Nor: "NOR", Xor: "XOR", Xnor: "XNOR",
}

// String returns the bench-format gate name.
func (g GateType) String() string { return gateNames[g] }

// Circuit is a combinational netlist. Signals are dense indices; inputs
// (including pseudo inputs from DFF extraction) have type Input.
type Circuit struct {
	Name    string
	Names   []string
	Types   []GateType
	Fanin   [][]int
	Inputs  []int // signal ids of primary + pseudo-primary inputs
	Outputs []int // signal ids of primary + pseudo-primary outputs

	order  []int   // topological order over non-input signals
	fanout [][]int // computed on Finalize
}

// NumSignals returns the total signal count.
func (c *Circuit) NumSignals() int { return len(c.Types) }

// NumGates returns the number of non-input signals.
func (c *Circuit) NumGates() int { return len(c.Types) - len(c.Inputs) }

// Fanout returns the fanout lists (valid after Finalize).
func (c *Circuit) Fanout() [][]int { return c.fanout }

// Builder incrementally constructs a circuit.
type Builder struct {
	c     *Circuit
	index map[string]int
}

// NewBuilder returns an empty builder for a circuit with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{c: &Circuit{Name: name}, index: make(map[string]int)}
}

// NumSignals returns the number of distinct signals declared so far.
func (b *Builder) NumSignals() int { return len(b.c.Names) }

// NumInputs returns the number of (pseudo) primary inputs declared so
// far.
func (b *Builder) NumInputs() int { return len(b.c.Inputs) }

// Signal returns the id for name, creating an untyped placeholder if new.
func (b *Builder) Signal(name string) int {
	if id, ok := b.index[name]; ok {
		return id
	}
	id := len(b.c.Names)
	b.c.Names = append(b.c.Names, name)
	b.c.Types = append(b.c.Types, Input) // provisional; AddGate overrides
	b.c.Fanin = append(b.c.Fanin, nil)
	b.index[name] = id
	return id
}

// AddInput declares a (pseudo) primary input.
func (b *Builder) AddInput(name string) int {
	id := b.Signal(name)
	b.c.Inputs = append(b.c.Inputs, id)
	return id
}

// AddOutput declares a (pseudo) primary output.
func (b *Builder) AddOutput(name string) int {
	id := b.Signal(name)
	b.c.Outputs = append(b.c.Outputs, id)
	return id
}

// AddGate defines signal name as a gate of type t over the fanin names.
func (b *Builder) AddGate(name string, t GateType, fanin ...string) (int, error) {
	switch t {
	case Buf, Not:
		if len(fanin) != 1 {
			return 0, fmt.Errorf("circuit: %s %s needs exactly 1 fanin", t, name)
		}
	case And, Nand, Or, Nor, Xor, Xnor:
		if len(fanin) < 2 {
			return 0, fmt.Errorf("circuit: %s %s needs >=2 fanins", t, name)
		}
	default:
		return 0, fmt.Errorf("circuit: cannot add gate of type %v", t)
	}
	id := b.Signal(name)
	if b.c.Fanin[id] != nil {
		return 0, fmt.Errorf("circuit: signal %s defined twice", name)
	}
	b.c.Types[id] = t
	ids := make([]int, len(fanin))
	for i, f := range fanin {
		ids[i] = b.Signal(f)
	}
	b.c.Fanin[id] = ids
	return id, nil
}

// Finalize validates the netlist, computes fanout lists and a topological
// evaluation order, and returns the circuit.
func (b *Builder) Finalize() (*Circuit, error) {
	c := b.c
	isInput := make([]bool, c.NumSignals())
	for _, id := range c.Inputs {
		isInput[id] = true
	}
	for id, t := range c.Types {
		if t == Input && !isInput[id] {
			return nil, fmt.Errorf("circuit: signal %s is undriven and not an input", c.Names[id])
		}
		if t != Input && isInput[id] {
			return nil, fmt.Errorf("circuit: input %s is also a gate output", c.Names[id])
		}
	}
	// Kahn topological sort over gates.
	indeg := make([]int, c.NumSignals())
	c.fanout = make([][]int, c.NumSignals())
	for id, fin := range c.Fanin {
		for _, f := range fin {
			c.fanout[f] = append(c.fanout[f], id)
		}
		indeg[id] = len(fin)
	}
	queue := append([]int(nil), c.Inputs...)
	c.order = c.order[:0]
	seen := 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		seen++
		if c.Types[id] != Input {
			c.order = append(c.order, id)
		}
		for _, next := range c.fanout[id] {
			indeg[next]--
			if indeg[next] == 0 {
				queue = append(queue, next)
			}
		}
	}
	if seen != c.NumSignals() {
		return nil, fmt.Errorf("circuit: combinational loop detected (%d of %d signals reachable)", seen, c.NumSignals())
	}
	if len(c.Inputs) == 0 {
		return nil, fmt.Errorf("circuit: no inputs")
	}
	if len(c.Outputs) == 0 {
		return nil, fmt.Errorf("circuit: no outputs")
	}
	return c, nil
}

// eval3 computes a 3-valued gate function.
func eval3(t GateType, in []tritvec.Trit) tritvec.Trit {
	switch t {
	case Buf:
		return in[0]
	case Not:
		return not3(in[0])
	case And, Nand:
		v := and3(in)
		if t == Nand {
			v = not3(v)
		}
		return v
	case Or, Nor:
		v := or3(in)
		if t == Nor {
			v = not3(v)
		}
		return v
	case Xor, Xnor:
		v := xor3(in)
		if t == Xnor {
			v = not3(v)
		}
		return v
	}
	panic("circuit: eval3 on input")
}

func not3(a tritvec.Trit) tritvec.Trit {
	switch a {
	case tritvec.Zero:
		return tritvec.One
	case tritvec.One:
		return tritvec.Zero
	}
	return tritvec.X
}

func and3(in []tritvec.Trit) tritvec.Trit {
	sawX := false
	for _, a := range in {
		switch a {
		case tritvec.Zero:
			return tritvec.Zero
		case tritvec.X:
			sawX = true
		}
	}
	if sawX {
		return tritvec.X
	}
	return tritvec.One
}

func or3(in []tritvec.Trit) tritvec.Trit {
	sawX := false
	for _, a := range in {
		switch a {
		case tritvec.One:
			return tritvec.One
		case tritvec.X:
			sawX = true
		}
	}
	if sawX {
		return tritvec.X
	}
	return tritvec.Zero
}

func xor3(in []tritvec.Trit) tritvec.Trit {
	parity := tritvec.Zero
	for _, a := range in {
		if a == tritvec.X {
			return tritvec.X
		}
		if a == tritvec.One {
			parity = not3(parity)
		}
	}
	return parity
}

// Sim3 runs 3-valued simulation. assign holds one trit per circuit input,
// in c.Inputs order. The returned slice holds the value of every signal.
// If force is non-nil, the signal force.Signal is overridden with
// force.Value after evaluation (used for stuck-at faulty machines).
type Force struct {
	Signal int
	Value  tritvec.Trit
}

// Sim3 evaluates the circuit under a (possibly partial) input assignment.
func (c *Circuit) Sim3(assign tritvec.Vector, force *Force) []tritvec.Trit {
	if assign.Len() != len(c.Inputs) {
		panic(fmt.Sprintf("circuit: assignment width %d != inputs %d", assign.Len(), len(c.Inputs)))
	}
	vals := make([]tritvec.Trit, c.NumSignals())
	for i, id := range c.Inputs {
		vals[id] = assign.Get(i)
	}
	if force != nil && c.Types[force.Signal] == Input {
		vals[force.Signal] = force.Value
	}
	buf := make([]tritvec.Trit, 0, 8)
	for _, id := range c.order {
		buf = buf[:0]
		for _, f := range c.Fanin[id] {
			buf = append(buf, vals[f])
		}
		vals[id] = eval3(c.Types[id], buf)
		if force != nil && force.Signal == id {
			vals[id] = force.Value
		}
	}
	return vals
}

// OutputsOf extracts the output values from a full value slice.
func (c *Circuit) OutputsOf(vals []tritvec.Trit) []tritvec.Trit {
	out := make([]tritvec.Trit, len(c.Outputs))
	for i, id := range c.Outputs {
		out[i] = vals[id]
	}
	return out
}

// Sim64 runs 64 fully specified patterns in parallel; inputs[i] holds the
// 64 values (bit b = pattern b) of circuit input i. force, if non-nil,
// overrides a signal with a constant (0x0 or all-ones) for stuck-at
// simulation. Returns per-signal 64-pattern words.
func (c *Circuit) Sim64(inputs []uint64, force *Force64) []uint64 {
	if len(inputs) != len(c.Inputs) {
		panic(fmt.Sprintf("circuit: Sim64 width %d != inputs %d", len(inputs), len(c.Inputs)))
	}
	vals := make([]uint64, c.NumSignals())
	for i, id := range c.Inputs {
		vals[id] = inputs[i]
	}
	if force != nil && c.Types[force.Signal] == Input {
		vals[force.Signal] = force.Value
	}
	for _, id := range c.order {
		fin := c.Fanin[id]
		var v uint64
		switch c.Types[id] {
		case Buf:
			v = vals[fin[0]]
		case Not:
			v = ^vals[fin[0]]
		case And, Nand:
			v = ^uint64(0)
			for _, f := range fin {
				v &= vals[f]
			}
			if c.Types[id] == Nand {
				v = ^v
			}
		case Or, Nor:
			v = 0
			for _, f := range fin {
				v |= vals[f]
			}
			if c.Types[id] == Nor {
				v = ^v
			}
		case Xor, Xnor:
			v = 0
			for _, f := range fin {
				v ^= vals[f]
			}
			if c.Types[id] == Xnor {
				v = ^v
			}
		}
		vals[id] = v
		if force != nil && force.Signal == id {
			vals[id] = force.Value
		}
	}
	return vals
}

// Force64 overrides a signal with a 64-pattern constant word.
type Force64 struct {
	Signal int
	Value  uint64
}

// Levels returns the logic level (longest path from an input) per signal.
func (c *Circuit) Levels() []int {
	lv := make([]int, c.NumSignals())
	for _, id := range c.order {
		max := 0
		for _, f := range c.Fanin[id] {
			if lv[f]+1 > max {
				max = lv[f] + 1
			}
		}
		lv[id] = max
	}
	return lv
}

// IsInput reports whether signal id is a (pseudo) primary input.
func (c *Circuit) IsInput(id int) bool { return c.Types[id] == Input }

// InputIndex maps signal id -> position in c.Inputs, or -1.
func (c *Circuit) InputIndex(id int) int {
	for i, s := range c.Inputs {
		if s == id {
			return i
		}
	}
	return -1
}

// SignalID returns the id of a named signal, or -1.
func (c *Circuit) SignalID(name string) int {
	for i, n := range c.Names {
		if n == name {
			return i
		}
	}
	return -1
}
